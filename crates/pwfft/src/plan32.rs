//! Single-precision 1-D complex FFT plans — the fp32 twin of
//! [`Plan`](crate::plan::Plan) for the mixed-precision exchange
//! pipeline.
//!
//! Same mixed-radix decimation-in-time structure and identical factor
//! ordering as the fp64 plans, with fp32 twiddles (evaluated in fp64 and
//! rounded once) and fp32 butterflies: half the memory traffic and twice
//! the SIMD lanes per pass. Conventions match [`Plan`](crate::plan::Plan):
//! unnormalized `forward`, `1/n`-scaled `inverse`.
//!
//! The per-line and row-vector (`_rows_with`) variants perform the same
//! arithmetic per lane, so the fused passes the `Blocked` backend
//! prefers are value-identical to the per-line passes.

use crate::plan::MAX_FAST_RADIX;
use pwnum::precision::{c32, Complex32};

/// Precomputed fp32 plan for transforms of one length.
#[derive(Clone, Debug)]
pub struct Plan32 {
    n: usize,
    /// Prime-power factor sequence (shared logic with the fp64 plan).
    factors: Vec<usize>,
    /// Twiddle table `w[j] = fl32(exp(-2πi j / n))` — evaluated in fp64,
    /// rounded once, so every twiddle carries at most half-ulp error.
    twiddle: Vec<Complex32>,
}

fn factorize(mut n: usize) -> Vec<usize> {
    let mut f = Vec::new();
    while n.is_multiple_of(4) {
        f.push(4);
        n /= 4;
    }
    while n.is_multiple_of(2) {
        f.push(2);
        n /= 2;
    }
    while n.is_multiple_of(3) {
        f.push(3);
        n /= 3;
    }
    while n.is_multiple_of(5) {
        f.push(5);
        n /= 5;
    }
    let mut p = 7;
    while n > 1 {
        while n.is_multiple_of(p) {
            f.push(p);
            n /= p;
        }
        p += 2;
        if p * p > n && n > 1 {
            f.push(n);
            break;
        }
    }
    f
}

impl Plan32 {
    /// Builds an fp32 plan for length-`n` transforms.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let twiddle: Vec<Complex32> = (0..n)
            .map(|j| {
                let theta = -2.0 * std::f64::consts::PI * j as f64 / n as f64;
                c32(theta.cos() as f32, theta.sin() as f32)
            })
            .collect();
        Plan32 { n, factors: factorize(n), twiddle }
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the length is 1 (transform is the identity).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// Required scratch size for the `_with` entry points.
    #[inline]
    pub fn scratch_len(&self) -> usize {
        self.n
    }

    /// Forward transform with caller-provided scratch (hot path; no
    /// allocation). `scratch` needs at least [`Self::scratch_len`]
    /// elements.
    pub fn forward_with(&self, data: &mut [Complex32], scratch: &mut [Complex32]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        assert!(scratch.len() >= self.n, "FFT scratch too small");
        if self.n == 1 {
            return;
        }
        scratch[..self.n].copy_from_slice(data);
        self.rec(&scratch[..self.n], 1, data, self.n, 0, false);
    }

    /// Inverse transform (normalized by `1/n`) with caller scratch.
    pub fn inverse_with(&self, data: &mut [Complex32], scratch: &mut [Complex32]) {
        assert_eq!(data.len(), self.n, "FFT buffer length mismatch");
        assert!(scratch.len() >= self.n, "FFT scratch too small");
        if self.n == 1 {
            return;
        }
        scratch[..self.n].copy_from_slice(data);
        self.rec(&scratch[..self.n], 1, data, self.n, 0, true);
        let inv_n = 1.0 / self.n as f32;
        for z in data.iter_mut() {
            *z = z.scale(inv_n);
        }
    }

    /// Required scratch size for the `_rows_with` entry points with
    /// `v`-element rows.
    #[inline]
    pub fn rows_scratch_len(&self, v: usize) -> usize {
        (self.n + MAX_FAST_RADIX) * v
    }

    /// Forward transform of `n` *rows* of `v` contiguous elements each —
    /// the fp32 fused multi-line pass mirroring
    /// [`Plan::forward_rows_with`](crate::plan::Plan::forward_rows_with):
    /// every butterfly moves whole contiguous rows, amortizing recursion
    /// and twiddle overhead over `v` lanes with fp32-wide SIMD. Results
    /// are value-identical to `v` separate strided transforms.
    pub fn forward_rows_with(&self, data: &mut [Complex32], v: usize, scratch: &mut [Complex32]) {
        self.rows_transform(data, v, scratch, false);
    }

    /// Inverse variant of [`Self::forward_rows_with`] (scaled by `1/n`).
    pub fn inverse_rows_with(&self, data: &mut [Complex32], v: usize, scratch: &mut [Complex32]) {
        self.rows_transform(data, v, scratch, true);
        let inv_n = 1.0 / self.n as f32;
        for z in data.iter_mut() {
            *z = z.scale(inv_n);
        }
    }

    fn rows_transform(
        &self,
        data: &mut [Complex32],
        v: usize,
        scratch: &mut [Complex32],
        inverse: bool,
    ) {
        assert!(v > 0, "row width must be positive");
        assert_eq!(data.len(), self.n * v, "rows FFT buffer length mismatch");
        assert!(scratch.len() >= self.rows_scratch_len(v), "rows FFT scratch too small");
        if self.n == 1 {
            return;
        }
        let (src, buf) = scratch.split_at_mut(self.n * v);
        src.copy_from_slice(data);
        self.rec_rows(src, 1, data, self.n, 0, inverse, v, buf);
    }

    /// Row-vector analog of [`Self::rec`]: element `j` is the contiguous
    /// row `src[j*ss*v .. j*ss*v + v]`.
    #[allow(clippy::too_many_arguments)]
    fn rec_rows(
        &self,
        src: &[Complex32],
        ss: usize,
        dst: &mut [Complex32],
        n_sub: usize,
        level: usize,
        inverse: bool,
        v: usize,
        buf: &mut [Complex32],
    ) {
        if n_sub == 1 {
            dst[..v].copy_from_slice(&src[..v]);
            return;
        }
        let r = self.factors[level];
        let m = n_sub / r;
        for q in 0..r {
            self.rec_rows(
                &src[q * ss * v..],
                ss * r,
                &mut dst[q * m * v..(q + 1) * m * v],
                m,
                level + 1,
                inverse,
                v,
                buf,
            );
        }
        let tw_stride = self.n / n_sub;
        if r <= MAX_FAST_RADIX {
            for k in 0..m {
                for q in 0..r {
                    let t = self.tw(q * k * tw_stride, inverse);
                    let srow = &dst[(q * m + k) * v..(q * m + k + 1) * v];
                    for (b, &x) in buf[q * v..(q + 1) * v].iter_mut().zip(srow) {
                        *b = x * t;
                    }
                }
                self.butterfly_rows(&buf[..r * v], dst, k, m, v, inverse);
            }
        } else {
            // Arbitrarily large prime radix: heap-buffered generic kernel.
            let mut hbuf = vec![Complex32::ZERO; r * v];
            for k in 0..m {
                for q in 0..r {
                    let t = self.tw(q * k * tw_stride, inverse);
                    let srow = &dst[(q * m + k) * v..(q * m + k + 1) * v];
                    for (b, &x) in hbuf[q * v..(q + 1) * v].iter_mut().zip(srow) {
                        *b = x * t;
                    }
                }
                self.generic_butterfly_rows(&hbuf, dst, k, m, v, inverse);
            }
        }
    }

    /// Row-vector r-point DFT of `buf`, scattered to rows `k + j*m` of
    /// `dst` — lane-for-lane the same arithmetic as [`Self::butterfly`].
    fn butterfly_rows(
        &self,
        buf: &[Complex32],
        dst: &mut [Complex32],
        k: usize,
        m: usize,
        v: usize,
        inverse: bool,
    ) {
        let r = buf.len() / v;
        let mut rows = dst.chunks_mut(v);
        match r {
            2 => {
                let r0 = rows.nth(k).unwrap();
                let r1 = rows.nth(m - 1).unwrap();
                for l in 0..v {
                    let (a, b) = (buf[l], buf[v + l]);
                    r0[l] = a + b;
                    r1[l] = a - b;
                }
            }
            3 => {
                let s3 = if inverse { 0.5 * 3f32.sqrt() } else { -0.5 * 3f32.sqrt() };
                let r0 = rows.nth(k).unwrap();
                let r1 = rows.nth(m - 1).unwrap();
                let r2 = rows.nth(m - 1).unwrap();
                let js3 = c32(0.0, s3);
                for l in 0..v {
                    let (a, b, c) = (buf[l], buf[v + l], buf[2 * v + l]);
                    let t = b + c;
                    let u = (b - c) * js3;
                    r0[l] = a + t;
                    r1[l] = a - t.scale(0.5) + u;
                    r2[l] = a - t.scale(0.5) - u;
                }
            }
            4 => {
                let ji = if inverse { c32(0.0, 1.0) } else { c32(0.0, -1.0) };
                let r0 = rows.nth(k).unwrap();
                let r1 = rows.nth(m - 1).unwrap();
                let r2 = rows.nth(m - 1).unwrap();
                let r3 = rows.nth(m - 1).unwrap();
                for l in 0..v {
                    let (a, b, c, d) = (buf[l], buf[v + l], buf[2 * v + l], buf[3 * v + l]);
                    let apc = a + c;
                    let amc = a - c;
                    let bpd = b + d;
                    let bmd = (b - d) * ji;
                    r0[l] = apc + bpd;
                    r1[l] = amc + bmd;
                    r2[l] = apc - bpd;
                    r3[l] = amc - bmd;
                }
            }
            5 => {
                let tau = 2.0 * std::f32::consts::PI / 5.0;
                let (c1, c2) = (tau.cos(), (2.0 * tau).cos());
                let (mut s1, mut s2) = (tau.sin(), (2.0 * tau).sin());
                if !inverse {
                    s1 = -s1;
                    s2 = -s2;
                }
                let r0 = rows.nth(k).unwrap();
                let r1 = rows.nth(m - 1).unwrap();
                let r2 = rows.nth(m - 1).unwrap();
                let r3 = rows.nth(m - 1).unwrap();
                let r4 = rows.nth(m - 1).unwrap();
                let i = Complex32::I;
                for l in 0..v {
                    let a = buf[l];
                    let p1 = buf[v + l] + buf[4 * v + l];
                    let m1 = buf[v + l] - buf[4 * v + l];
                    let p2 = buf[2 * v + l] + buf[3 * v + l];
                    let m2 = buf[2 * v + l] - buf[3 * v + l];
                    r0[l] = a + p1 + p2;
                    let re1 = a + p1.scale(c1) + p2.scale(c2);
                    let im1 = m1.scale(s1) + m2.scale(s2);
                    let re2 = a + p1.scale(c2) + p2.scale(c1);
                    let im2 = m1.scale(s2) - m2.scale(s1);
                    r1[l] = re1 + i * im1;
                    r2[l] = re2 + i * im2;
                    r3[l] = re2 - i * im2;
                    r4[l] = re1 - i * im1;
                }
            }
            _ => self.generic_butterfly_rows(buf, dst, k, m, v, inverse),
        }
    }

    /// Row-vector analog of [`Self::generic_butterfly`].
    fn generic_butterfly_rows(
        &self,
        buf: &[Complex32],
        dst: &mut [Complex32],
        k: usize,
        m: usize,
        v: usize,
        inverse: bool,
    ) {
        let r = buf.len() / v;
        let stride_r = self.n / r;
        let mut rows = dst.chunks_mut(v);
        let mut row = rows.nth(k).unwrap();
        for j in 0..r {
            let w: Vec<Complex32> =
                (0..r).map(|q| self.tw((q * j % r) * stride_r, inverse)).collect();
            for (l, out) in row.iter_mut().enumerate() {
                let mut acc = Complex32::ZERO;
                for (q, &wq) in w.iter().enumerate() {
                    acc += buf[q * v + l] * wq;
                }
                *out = acc;
            }
            if j + 1 < r {
                row = rows.nth(m - 1).unwrap();
            }
        }
    }

    /// Twiddle lookup `exp(∓2πi idx / n)` (conjugated for inverse).
    #[inline(always)]
    fn tw(&self, idx: usize, inverse: bool) -> Complex32 {
        let w = self.twiddle[idx % self.n];
        if inverse {
            w.conj()
        } else {
            w
        }
    }

    /// Recursive mixed-radix step — the fp32 twin of the fp64 plan's
    /// recursion with identical factor ordering.
    fn rec(
        &self,
        src: &[Complex32],
        ss: usize,
        dst: &mut [Complex32],
        n_sub: usize,
        level: usize,
        inverse: bool,
    ) {
        if n_sub == 1 {
            dst[0] = src[0];
            return;
        }
        let r = self.factors[level];
        let m = n_sub / r;
        for q in 0..r {
            let sub_src = &src[q * ss..];
            self.rec(sub_src, ss * r, &mut dst[q * m..(q + 1) * m], m, level + 1, inverse);
        }
        let tw_stride = self.n / n_sub;
        let mut buf = [Complex32::ZERO; 16];
        debug_assert!(r <= 16 || r % 2 == 1, "unexpected radix {r}");
        if r <= 16 {
            for k in 0..m {
                for (q, b) in buf[..r].iter_mut().enumerate() {
                    let t = self.tw(q * k * tw_stride, inverse);
                    *b = dst[q * m + k] * t;
                }
                self.butterfly(&mut buf[..r], dst, k, m, inverse);
            }
        } else {
            let mut heap_buf = vec![Complex32::ZERO; r];
            for k in 0..m {
                for (q, b) in heap_buf.iter_mut().enumerate() {
                    let t = self.tw(q * k * tw_stride, inverse);
                    *b = dst[q * m + k] * t;
                }
                self.generic_butterfly(&heap_buf, dst, k, m, inverse);
            }
        }
    }

    /// r-point fp32 DFT of `buf`, scattered to `dst[k + j*m]`.
    #[inline]
    fn butterfly(
        &self,
        buf: &mut [Complex32],
        dst: &mut [Complex32],
        k: usize,
        m: usize,
        inverse: bool,
    ) {
        let r = buf.len();
        match r {
            2 => {
                let (a, b) = (buf[0], buf[1]);
                dst[k] = a + b;
                dst[k + m] = a - b;
            }
            3 => {
                let s3 = if inverse { 0.5 * 3f32.sqrt() } else { -0.5 * 3f32.sqrt() };
                let (a, b, c) = (buf[0], buf[1], buf[2]);
                let t = b + c;
                let u = (b - c) * c32(0.0, s3);
                dst[k] = a + t;
                dst[k + m] = a - t.scale(0.5) + u;
                dst[k + 2 * m] = a - t.scale(0.5) - u;
            }
            4 => {
                let ji = if inverse { c32(0.0, 1.0) } else { c32(0.0, -1.0) };
                let (a, b, c, d) = (buf[0], buf[1], buf[2], buf[3]);
                let apc = a + c;
                let amc = a - c;
                let bpd = b + d;
                let bmd = (b - d) * ji;
                dst[k] = apc + bpd;
                dst[k + m] = amc + bmd;
                dst[k + 2 * m] = apc - bpd;
                dst[k + 3 * m] = amc - bmd;
            }
            5 => {
                let tau = 2.0 * std::f32::consts::PI / 5.0;
                let (c1, c2) = (tau.cos(), (2.0 * tau).cos());
                let (mut s1, mut s2) = (tau.sin(), (2.0 * tau).sin());
                if !inverse {
                    s1 = -s1;
                    s2 = -s2;
                }
                let a = buf[0];
                let p1 = buf[1] + buf[4];
                let m1 = buf[1] - buf[4];
                let p2 = buf[2] + buf[3];
                let m2 = buf[2] - buf[3];
                dst[k] = a + p1 + p2;
                let re1 = a + p1.scale(c1) + p2.scale(c2);
                let im1 = m1.scale(s1) + m2.scale(s2);
                let re2 = a + p1.scale(c2) + p2.scale(c1);
                let im2 = m1.scale(s2) - m2.scale(s1);
                let i = Complex32::I;
                dst[k + m] = re1 + i * im1;
                dst[k + 2 * m] = re2 + i * im2;
                dst[k + 3 * m] = re2 - i * im2;
                dst[k + 4 * m] = re1 - i * im1;
            }
            _ => {
                let copy: Vec<Complex32> = buf.to_vec();
                self.generic_butterfly(&copy, dst, k, m, inverse);
            }
        }
    }

    /// Naive O(r²) fp32 DFT kernel for odd prime radices.
    fn generic_butterfly(
        &self,
        buf: &[Complex32],
        dst: &mut [Complex32],
        k: usize,
        m: usize,
        inverse: bool,
    ) {
        let r = buf.len();
        let stride_r = self.n / r;
        for j in 0..r {
            let mut acc = Complex32::ZERO;
            for (q, &bq) in buf.iter().enumerate() {
                acc += bq * self.tw((q * j % r) * stride_r, inverse);
            }
            dst[k + j * m] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnum::precision::{demote, promote};

    fn signal64(n: usize, seed: f64) -> Vec<pwnum::Complex64> {
        (0..n)
            .map(|j| {
                pwnum::c64((j as f64 * 0.7 + seed).sin(), (j as f64 * 1.3 - seed).cos())
            })
            .collect()
    }

    #[test]
    fn matches_fp64_plan_within_fp32_tolerance() {
        for n in [1, 2, 3, 4, 5, 8, 12, 15, 20, 36, 45, 60, 90, 97, 120] {
            let p64 = crate::plan::Plan::new(n);
            let p32 = Plan32::new(n);
            let x = signal64(n, 0.4);
            let mut y64 = x.clone();
            p64.forward(&mut y64);
            let mut y32 = demote(&x);
            let mut scratch = vec![Complex32::ZERO; p32.scratch_len()];
            p32.forward_with(&mut y32, &mut scratch);
            let up = promote(&y32);
            let scale = y64.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
            for (a, b) in y64.iter().zip(&up) {
                assert!((*a - *b).abs() < 2e-5 * scale.max(1.0), "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_inverse32() {
        for n in [2, 3, 4, 5, 8, 12, 36, 60, 90, 120, 251] {
            let plan = Plan32::new(n);
            let x = demote(&signal64(n, 1.7));
            let mut y = x.clone();
            let mut scratch = vec![Complex32::ZERO; plan.scratch_len()];
            plan.forward_with(&mut y, &mut scratch);
            plan.inverse_with(&mut y, &mut scratch);
            for (a, b) in y.iter().zip(&x) {
                assert!((*a - *b).abs() < 1e-4, "roundtrip mismatch n={n}");
            }
        }
    }

    #[test]
    fn rows_variant_matches_per_line() {
        // The fused row-vector pass must agree with per-line strided
        // transforms lane for lane (value-identical arithmetic).
        for (n, v) in [(12, 5), (60, 7), (90, 4)] {
            let plan = Plan32::new(n);
            let base = demote(&signal64(n * v, 0.8));
            // Per-line: lane l forms the strided signal base[l], base[v+l], ...
            let mut want = base.clone();
            let mut line = vec![Complex32::ZERO; n];
            let mut scratch = vec![Complex32::ZERO; plan.scratch_len()];
            for l in 0..v {
                for j in 0..n {
                    line[j] = want[j * v + l];
                }
                plan.forward_with(&mut line, &mut scratch);
                for j in 0..n {
                    want[j * v + l] = line[j];
                }
            }
            let mut got = base.clone();
            let mut rows_scratch = vec![Complex32::ZERO; plan.rows_scratch_len(v)];
            plan.forward_rows_with(&mut got, v, &mut rows_scratch);
            assert_eq!(got, want, "fused rows mismatch n={n} v={v}");
        }
    }
}
