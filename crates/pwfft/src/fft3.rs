//! Three-dimensional FFTs over row-major grids.
//!
//! Grid layout: index `(i0, i1, i2) -> (i0*n1 + i1)*n2 + i2` (axis 2
//! fastest). Wavefunctions and densities in `pwdft` live on such grids;
//! the Fock exchange operator performs two 3D transforms per orbital pair,
//! which makes [`Fft3::forward_many`] (batched, thread-parallel) the
//! hottest path in the whole code — it is the Rust analog of the paper's
//! multi-batch cuFFT strategy (Sec. III-B b).

use crate::plan::Plan;
use pwnum::backend::{Backend, GridTransform};
use pwnum::complex::Complex64;
use pwnum::parallel::par_chunks_mut;
use std::cell::RefCell;

thread_local! {
    /// Per-thread scratch reused across FFT calls (line buffer + plan scratch).
    static SCRATCH: RefCell<Vec<Complex64>> = const { RefCell::new(Vec::new()) };
}

/// Plans for a fixed 3D grid shape.
#[derive(Clone, Debug)]
pub struct Fft3 {
    n0: usize,
    n1: usize,
    n2: usize,
    plan0: Plan,
    plan1: Plan,
    plan2: Plan,
}

impl Fft3 {
    /// Creates plans for an `n0 x n1 x n2` grid.
    pub fn new(n0: usize, n1: usize, n2: usize) -> Self {
        assert!(n0 > 0 && n1 > 0 && n2 > 0, "grid dimensions must be positive");
        Fft3 { n0, n1, n2, plan0: Plan::new(n0), plan1: Plan::new(n1), plan2: Plan::new(n2) }
    }

    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n0 * self.n1 * self.n2
    }

    /// True for the degenerate 1-point grid.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Grid dimensions `(n0, n1, n2)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n0, self.n1, self.n2)
    }

    /// Scratch elements required by the `_with` entry points
    /// (line buffer + 1D plan scratch).
    #[inline]
    pub fn scratch_len(&self) -> usize {
        2 * self.n0.max(self.n1).max(self.n2)
    }

    /// Scratch elements required by [`Self::transform_fused`]: a
    /// grid-sized source copy for the row-vector passes, the row
    /// buffers of the widest pass, and 1D plan scratch.
    #[inline]
    pub fn scratch_len_fused(&self) -> usize {
        self.len() + crate::plan::MAX_FAST_RADIX * self.n1 * self.n2 + self.scratch_len()
    }

    fn with_scratch<R>(&self, f: impl FnOnce(&mut [Complex64]) -> R) -> R {
        let need = self.scratch_len();
        SCRATCH.with(|s| {
            let mut s = s.borrow_mut();
            if s.len() < need {
                s.resize(need, Complex64::ZERO);
            }
            f(&mut s[..need])
        })
    }

    fn transform(&self, data: &mut [Complex64], inverse: bool) {
        self.with_scratch(|scratch| self.transform_with(data, scratch, inverse));
    }

    /// Transforms one grid in place using caller-provided scratch of at
    /// least [`Self::scratch_len`] elements — the allocation-free entry
    /// point batched backends drive with a reused arena.
    pub fn transform_with(&self, data: &mut [Complex64], scratch: &mut [Complex64], inverse: bool) {
        assert_eq!(data.len(), self.len(), "FFT3 buffer length mismatch");
        let (n0, n1, n2) = (self.n0, self.n1, self.n2);
        {
            let scratch = &mut scratch[..self.scratch_len()];
            let (line, plan_scratch) = scratch.split_at_mut(n0.max(n1).max(n2));
            // Axis 2: contiguous lines.
            for row in data.chunks_mut(n2) {
                if inverse {
                    self.plan2.inverse_with(row, plan_scratch);
                } else {
                    self.plan2.forward_with(row, plan_scratch);
                }
            }
            // Axis 1: stride n2 within each i0-plane.
            for i0 in 0..n0 {
                let plane = &mut data[i0 * n1 * n2..(i0 + 1) * n1 * n2];
                for i2 in 0..n2 {
                    for i1 in 0..n1 {
                        line[i1] = plane[i1 * n2 + i2];
                    }
                    let seg = &mut line[..n1];
                    if inverse {
                        self.plan1.inverse_with(seg, plan_scratch);
                    } else {
                        self.plan1.forward_with(seg, plan_scratch);
                    }
                    for i1 in 0..n1 {
                        plane[i1 * n2 + i2] = line[i1];
                    }
                }
            }
            // Axis 0: stride n1*n2.
            let stride = n1 * n2;
            for i12 in 0..stride {
                for i0 in 0..n0 {
                    line[i0] = data[i0 * stride + i12];
                }
                let seg = &mut line[..n0];
                if inverse {
                    self.plan0.inverse_with(seg, plan_scratch);
                } else {
                    self.plan0.forward_with(seg, plan_scratch);
                }
                for i0 in 0..n0 {
                    data[i0 * stride + i12] = line[i0];
                }
            }
        }
    }

    /// Forward 3D transform, in place (unnormalized).
    pub fn forward(&self, data: &mut [Complex64]) {
        let _s = pwobs::span("fft.forward");
        self.transform(data, false);
    }

    /// Inverse 3D transform, in place (normalized by `1/len`).
    pub fn inverse(&self, data: &mut [Complex64]) {
        let _s = pwobs::span("fft.inverse");
        self.transform(data, true);
    }

    /// Fused-pass variant of [`Self::transform_with`]: the strided
    /// axis-1/axis-0 passes run as *row-vector* FFTs
    /// ([`Plan::forward_rows_with`]) — every butterfly moves whole
    /// contiguous rows, so per-line recursion/twiddle overhead is
    /// amortized over the fast axis and the inner loops vectorize. This
    /// is the CPU analog of the fused multi-line passes in the paper's
    /// GPU FFT path. Results are bitwise equal to the per-line variant.
    /// `scratch` must have at least [`Self::scratch_len_fused`] elements.
    pub fn transform_fused(
        &self,
        data: &mut [Complex64],
        scratch: &mut [Complex64],
        inverse: bool,
    ) {
        assert_eq!(data.len(), self.len(), "FFT3 buffer length mismatch");
        let (n1, n2) = (self.n1, self.n2);
        let scratch = &mut scratch[..self.scratch_len_fused()];
        let (rows_scratch, plan_scratch) =
            scratch.split_at_mut(self.len() + crate::plan::MAX_FAST_RADIX * n1 * n2);
        // Axis 2: contiguous lines, per-line 1D transforms.
        for row in data.chunks_mut(n2) {
            if inverse {
                self.plan2.inverse_with(row, plan_scratch);
            } else {
                self.plan2.forward_with(row, plan_scratch);
            }
        }
        // Axis 1: per i0-plane, one row-vector FFT over n1 rows of n2.
        for plane in data.chunks_mut(n1 * n2) {
            if inverse {
                self.plan1.inverse_rows_with(plane, n2, rows_scratch);
            } else {
                self.plan1.forward_rows_with(plane, n2, rows_scratch);
            }
        }
        // Axis 0: one row-vector FFT over n0 rows of n1*n2.
        if inverse {
            self.plan0.inverse_rows_with(data, n1 * n2, rows_scratch);
        } else {
            self.plan0.forward_rows_with(data, n1 * n2, rows_scratch);
        }
    }

    /// The forward transform as a [`GridTransform`] pass, ready to hand
    /// to [`Backend::transform_batch`].
    #[inline]
    pub fn forward_pass(&self) -> FftPass<'_> {
        FftPass { fft: self, inverse: false, fused: false }
    }

    /// The inverse transform as a [`GridTransform`] pass.
    #[inline]
    pub fn inverse_pass(&self) -> FftPass<'_> {
        FftPass { fft: self, inverse: true, fused: false }
    }

    /// A pass in the requested direction, using the fused row-vector
    /// variant when `backend` asks for fused grid passes.
    #[inline]
    pub fn pass_for(&self, backend: &dyn Backend, inverse: bool) -> FftPass<'_> {
        FftPass { fft: self, inverse, fused: backend.fused_grid_passes() }
    }

    /// Forward-transforms `count` consecutive grids in `data`, in parallel
    /// across threads (batched FFT).
    pub fn forward_many(&self, data: &mut [Complex64], count: usize) {
        self.many(data, count, false);
    }

    /// Inverse-transforms `count` consecutive grids, in parallel.
    pub fn inverse_many(&self, data: &mut [Complex64], count: usize) {
        self.many(data, count, true);
    }

    /// Batched forward transform routed through a compute [`Backend`]
    /// (the backend owns slab decomposition, scratch reuse, and the
    /// per-line vs tiled pass style).
    pub fn forward_many_with(&self, backend: &dyn Backend, data: &mut [Complex64], count: usize) {
        backend.transform_batch(&self.pass_for(backend, false), data, count);
    }

    /// Batched inverse transform routed through a compute [`Backend`].
    pub fn inverse_many_with(&self, backend: &dyn Backend, data: &mut [Complex64], count: usize) {
        backend.transform_batch(&self.pass_for(backend, true), data, count);
    }

    /// Batched filtered round trip over `count` consecutive grids:
    /// forward transform, elementwise multiply by the real `kernel`
    /// (cycled per grid), inverse transform — all in place in `data`.
    ///
    /// This is the screened-Poisson tile solve of the Fock exchange: the
    /// pair-block scheduler drives it on one pooled tile arena, so the
    /// whole round trip reuses a single buffer with no intermediate
    /// copies, and scratch stays bounded by the backend's per-worker
    /// arenas regardless of how many tiles flow through.
    pub fn convolve_many_with(
        &self,
        backend: &dyn Backend,
        data: &mut [Complex64],
        count: usize,
        kernel: &[f64],
    ) {
        assert_eq!(kernel.len(), self.len(), "convolve kernel/grid length mismatch");
        assert_eq!(data.len(), count * self.len(), "FFT3 batch length mismatch");
        if count == 0 {
            return;
        }
        self.forward_many_with(backend, data, count);
        backend.scale_by_real(kernel, data);
        self.inverse_many_with(backend, data, count);
    }

    fn many(&self, data: &mut [Complex64], count: usize, inverse: bool) {
        assert_eq!(data.len(), count * self.len(), "FFT3 batch length mismatch");
        if count == 0 {
            return;
        }
        // Spanned here rather than through a backend: this is the
        // thread-pool batched path that does not route via
        // `Backend::transform_batch`.
        let _s = pwobs::span("fft.many");
        let n = self.len();
        par_chunks_mut(data, n, |_, grid| self.transform(grid, inverse));
    }

    /// Scratch elements required by [`Self::convolve_grid_fused`]: one
    /// grid-sized rotation buffer plus the widest row-vector pass.
    #[inline]
    pub fn scratch_len_convolve(&self) -> usize {
        let max_plane =
            (self.n0 * self.n1).max(self.n2 * self.n0).max(self.n1 * self.n2);
        2 * self.len() + crate::plan::MAX_FAST_RADIX * max_plane
    }

    /// The whole screened-Poisson round trip — forward 3-D FFT, `K(G)`
    /// multiply, inverse 3-D FFT — over one grid in one fused pass.
    ///
    /// Instead of per-line strided passes, each axis is handled by a
    /// *rotation*: transpose the grid so the axis becomes the row index,
    /// then run one row-vector FFT ([`Plan::forward_rows_with`]) whose
    /// butterflies move whole contiguous planes. Three rotations land
    /// the spectrum back in the original `(i0,i1,i2)` layout, where the
    /// kernel multiplies elementwise; the mirrored chain brings the
    /// filtered grid home. Every intermediate lives in `scratch`
    /// (≥ [`Self::scratch_len_convolve`] elements) — nothing round-trips
    /// a pool between stages, and the contiguous row-vector butterflies
    /// are what make this measurably faster than the strided staged
    /// path (the CPU analog of the paper's fused GPU exchange chain).
    ///
    /// Transposes are exact permutations, the row-vector butterflies
    /// perform lane-for-lane the same arithmetic as the per-line
    /// recursion, and both directions visit the axes in the staged
    /// order (2, 1, 0) — so results are *bitwise identical* to the
    /// staged `forward → scale → inverse` round trip.
    pub fn convolve_grid_fused(
        &self,
        grid: &mut [Complex64],
        kernel: &[f64],
        scratch: &mut [Complex64],
    ) {
        assert_eq!(grid.len(), self.len(), "FFT3 buffer length mismatch");
        assert_eq!(kernel.len(), self.len(), "convolve kernel/grid length mismatch");
        let (n0, n1, n2) = (self.n0, self.n1, self.n2);
        let scratch = &mut scratch[..self.scratch_len_convolve()];
        let (buf, rows_scratch) = scratch.split_at_mut(self.len());
        // Forward: [i0,i1,i2] -> [i2,(i0,i1)] -> [i1,(i2,i0)] -> [i0,(i1,i2)].
        transpose_into(grid, buf, n0 * n1, n2);
        self.plan2.forward_rows_with(buf, n0 * n1, rows_scratch);
        transpose_into(buf, grid, n2 * n0, n1);
        self.plan1.forward_rows_with(grid, n2 * n0, rows_scratch);
        transpose_into(grid, buf, n1 * n2, n0);
        self.plan0.forward_rows_with(buf, n1 * n2, rows_scratch);
        // K(G) multiply in the original (i0,i1,i2) layout.
        for (z, &k) in buf.iter_mut().zip(kernel) {
            *z = z.scale(k);
        }
        // Inverse: rotate the same way round (axis order 2, 1, 0 again,
        // matching the staged inverse — bitwise, not just close).
        transpose_into(buf, grid, n0 * n1, n2);
        self.plan2.inverse_rows_with(grid, n0 * n1, rows_scratch);
        transpose_into(grid, buf, n2 * n0, n1);
        self.plan1.inverse_rows_with(buf, n2 * n0, rows_scratch);
        transpose_into(buf, grid, n1 * n2, n0);
        self.plan0.inverse_rows_with(grid, n1 * n2, rows_scratch);
    }

    /// The filtered round trip as one [`GridTransform`]: the `solve`
    /// operator of [`Backend::fused_pair_solve`]. Backends that ask for
    /// fused grid passes get the rotation-based
    /// [`Self::convolve_grid_fused`]; others run the per-line staged
    /// arithmetic inside the single pass — bitwise identical to
    /// `convolve_many_with` on that backend.
    #[inline]
    pub fn convolve_pass<'f>(
        &'f self,
        kernel: &'f [f64],
        backend: &dyn Backend,
    ) -> ConvolvePass<'f> {
        assert_eq!(kernel.len(), self.len(), "convolve kernel/grid length mismatch");
        ConvolvePass { fft: self, kernel, fused: backend.fused_grid_passes() }
    }
}

/// Writes the `rows × cols` row-major matrix `a` transposed into `b`
/// (`cols × rows`). A pure permutation — value-exact — tiled so both
/// sides stay cache-resident on large grids. Shared by the fp64 and
/// fp32 fused convolve chains.
pub(crate) fn transpose_into<T: Copy>(a: &[T], b: &mut [T], rows: usize, cols: usize) {
    const TILE: usize = 32;
    debug_assert_eq!(a.len(), rows * cols);
    debug_assert_eq!(b.len(), rows * cols);
    for ib in (0..rows).step_by(TILE) {
        let imax = (ib + TILE).min(rows);
        for jb in (0..cols).step_by(TILE) {
            let jmax = (jb + TILE).min(cols);
            for i in ib..imax {
                for j in jb..jmax {
                    b[j * rows + i] = a[i * cols + j];
                }
            }
        }
    }
}

/// The screened-Poisson round trip (forward FFT → `K(G)` → inverse FFT)
/// as a single [`GridTransform`] — what the fused pair-solve pipeline
/// hands to [`Backend::fused_pair_solve`].
#[derive(Clone, Copy, Debug)]
pub struct ConvolvePass<'f> {
    fft: &'f Fft3,
    kernel: &'f [f64],
    fused: bool,
}

impl GridTransform for ConvolvePass<'_> {
    fn grid_len(&self) -> usize {
        self.fft.len()
    }

    fn scratch_len(&self) -> usize {
        if self.fused {
            self.fft.scratch_len_convolve()
        } else {
            self.fft.scratch_len()
        }
    }

    fn run(&self, grid: &mut [Complex64], scratch: &mut [Complex64]) {
        if self.fused {
            self.fft.convolve_grid_fused(grid, self.kernel, scratch);
        } else {
            // Staged arithmetic inside one pass: identical operation
            // sequence to forward_many → scale_by_real → inverse_many
            // on a non-fused backend, hence bitwise identical results.
            self.fft.transform_with(grid, scratch, false);
            for (z, &k) in grid.iter_mut().zip(self.kernel) {
                *z = z.scale(k);
            }
            self.fft.transform_with(grid, scratch, true);
        }
    }
}

/// One direction of a [`Fft3`] as a batched-transform pass: the bridge
/// between the FFT plans and the [`Backend`] batching strategies.
#[derive(Clone, Copy, Debug)]
pub struct FftPass<'f> {
    fft: &'f Fft3,
    inverse: bool,
    fused: bool,
}

impl GridTransform for FftPass<'_> {
    fn grid_len(&self) -> usize {
        self.fft.len()
    }

    fn scratch_len(&self) -> usize {
        if self.fused {
            self.fft.scratch_len_fused()
        } else {
            self.fft.scratch_len()
        }
    }

    fn run(&self, grid: &mut [Complex64], scratch: &mut [Complex64]) {
        if self.fused {
            self.fft.transform_fused(grid, scratch, self.inverse);
        } else {
            self.fft.transform_with(grid, scratch, self.inverse);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwnum::complex::c64;

    fn signal(len: usize, seed: f64) -> Vec<Complex64> {
        (0..len)
            .map(|j| c64((j as f64 * 0.31 + seed).sin(), (j as f64 * 0.17 - seed).cos()))
            .collect()
    }

    fn naive_3d(
        x: &[Complex64],
        dims: (usize, usize, usize),
        k: (usize, usize, usize),
    ) -> Complex64 {
        let (n0, n1, n2) = dims;
        let mut acc = Complex64::ZERO;
        for i0 in 0..n0 {
            for i1 in 0..n1 {
                for i2 in 0..n2 {
                    let phase = -2.0
                        * std::f64::consts::PI
                        * (k.0 * i0) as f64
                        / n0 as f64
                        - 2.0 * std::f64::consts::PI * (k.1 * i1) as f64 / n1 as f64
                        - 2.0 * std::f64::consts::PI * (k.2 * i2) as f64 / n2 as f64;
                    acc += x[(i0 * n1 + i1) * n2 + i2] * Complex64::cis(phase);
                }
            }
        }
        acc
    }

    #[test]
    fn matches_naive_small() {
        let dims = (3, 4, 5);
        let fft = Fft3::new(dims.0, dims.1, dims.2);
        let x = signal(fft.len(), 0.6);
        let mut y = x.clone();
        fft.forward(&mut y);
        for k0 in 0..dims.0 {
            for k1 in 0..dims.1 {
                for k2 in 0..dims.2 {
                    let want = naive_3d(&x, dims, (k0, k1, k2));
                    let got = y[(k0 * dims.1 + k1) * dims.2 + k2];
                    assert!((want - got).abs() < 1e-10, "mismatch at ({k0},{k1},{k2})");
                }
            }
        }
    }

    #[test]
    fn roundtrip() {
        for dims in [(2, 2, 2), (4, 6, 10), (8, 9, 5), (12, 12, 12)] {
            let fft = Fft3::new(dims.0, dims.1, dims.2);
            let x = signal(fft.len(), 1.2);
            let mut y = x.clone();
            fft.forward(&mut y);
            fft.inverse(&mut y);
            for (a, b) in y.iter().zip(&x) {
                assert!((*a - *b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn plane_wave_is_delta_in_g_space() {
        // exp(+2πi (k·r)/N) transforms to a delta at +k under the forward
        // convention X[k] = sum x exp(-2πi kr/N).
        let (n0, n1, n2) = (6, 6, 6);
        let fft = Fft3::new(n0, n1, n2);
        let (k0, k1, k2) = (2usize, 1usize, 5usize);
        let mut x = vec![Complex64::ZERO; fft.len()];
        for i0 in 0..n0 {
            for i1 in 0..n1 {
                for i2 in 0..n2 {
                    let phase = 2.0 * std::f64::consts::PI
                        * (k0 * i0) as f64 / n0 as f64
                        + 2.0 * std::f64::consts::PI * (k1 * i1) as f64 / n1 as f64
                        + 2.0 * std::f64::consts::PI * (k2 * i2) as f64 / n2 as f64;
                    x[(i0 * n1 + i1) * n2 + i2] = Complex64::cis(phase);
                }
            }
        }
        fft.forward(&mut x);
        let peak = (k0 * n1 + k1) * n2 + k2;
        for (idx, z) in x.iter().enumerate() {
            if idx == peak {
                assert!((*z - c64(fft.len() as f64, 0.0)).abs() < 1e-8);
            } else {
                assert!(z.abs() < 1e-8, "leakage at {idx}: {z:?}");
            }
        }
    }

    #[test]
    fn parseval_3d() {
        let fft = Fft3::new(4, 5, 6);
        let x = signal(fft.len(), 0.9);
        let e_time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x.clone();
        fft.forward(&mut y);
        let e_freq: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / fft.len() as f64;
        assert!((e_time - e_freq).abs() < 1e-9 * e_time);
    }

    #[test]
    fn convolve_matches_manual_roundtrip() {
        // The filtered round trip equals forward → kernel multiply →
        // inverse done by hand, per grid, on both backends — and the
        // conjugate symmetry the pair scheduler relies on holds: a real
        // kernel gives convolve(conj f) = conj(convolve f).
        let fft = Fft3::new(4, 6, 5);
        let n = fft.len();
        let count = 3;
        // Even in G (K(-G) = K(G)), like every |G|²-derived physical
        // kernel — required for the conjugate-symmetry check below.
        let fold = |i: usize, d: usize| -> f64 {
            let m = if i <= d / 2 { i as i64 } else { i as i64 - d as i64 };
            m as f64
        };
        let mut kernel = vec![0.0f64; n];
        for i0 in 0..4 {
            for i1 in 0..6 {
                for i2 in 0..5 {
                    let g2 = fold(i0, 4).powi(2) + fold(i1, 6).powi(2) + fold(i2, 5).powi(2);
                    kernel[(i0 * 6 + i1) * 5 + i2] = 1.0 / (1.0 + g2);
                }
            }
        }
        let base = signal(n * count, 0.7);
        for be in [
            pwnum::backend::by_name("reference").unwrap(),
            pwnum::backend::by_name("blocked").unwrap(),
        ] {
            let mut got = base.clone();
            fft.convolve_many_with(&*be, &mut got, count, &kernel);
            let mut want = base.clone();
            for grid in want.chunks_mut(n) {
                fft.forward(grid);
                for (z, &k) in grid.iter_mut().zip(&kernel) {
                    *z = z.scale(k);
                }
                fft.inverse(grid);
            }
            for (a, b) in got.iter().zip(&want) {
                assert!((*a - *b).abs() < 1e-10, "{}: convolve mismatch", be.name());
            }
            // Conjugate symmetry.
            let mut conj_in: Vec<Complex64> = base[..n].iter().map(|z| z.conj()).collect();
            fft.convolve_many_with(&*be, &mut conj_in, 1, &kernel);
            for (a, b) in conj_in.iter().zip(&got[..n]) {
                assert!((*a - b.conj()).abs() < 1e-9, "{}: W_ji != conj(W_ij)", be.name());
            }
        }
    }

    #[test]
    fn fused_convolve_matches_staged_roundtrip_bitwise() {
        // The rotation-based fused convolve must match the staged
        // forward → K(G) → inverse chain bitwise: transposes are exact,
        // row-vector butterflies are lane-exact, and both directions
        // visit the axes in the same (2, 1, 0) order.
        for dims in [(12usize, 12usize, 12usize), (6, 6, 6), (4, 6, 10), (8, 9, 5)] {
            let fft = Fft3::new(dims.0, dims.1, dims.2);
            let n = fft.len();
            let kernel: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
            let base = signal(n, 0.7);
            let mut staged = base.clone();
            fft.forward(&mut staged);
            for (z, &k) in staged.iter_mut().zip(&kernel) {
                *z = z.scale(k);
            }
            fft.inverse(&mut staged);
            let mut fused = base.clone();
            let mut scratch = vec![Complex64::ZERO; fft.scratch_len_convolve()];
            fft.convolve_grid_fused(&mut fused, &kernel, &mut scratch);
            for (a, b) in fused.iter().zip(&staged) {
                assert_eq!(*a, *b, "fused convolve not bitwise on {dims:?}");
            }
        }
    }

    #[test]
    fn convolve_pass_is_bitwise_with_staged_per_backend() {
        // Through the GridTransform seam: on each backend, running the
        // ConvolvePass built *for that backend* must reproduce that
        // backend's convolve_many_with bitwise — the property the fused
        // pair-solve scheduler relies on.
        let fft = Fft3::new(12, 12, 12);
        let n = fft.len();
        let kernel: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let base = signal(n * 2, 0.3);
        for be in [
            pwnum::backend::by_name("reference").unwrap(),
            pwnum::backend::by_name("blocked").unwrap(),
        ] {
            let mut staged = base.clone();
            fft.convolve_many_with(&*be, &mut staged, 2, &kernel);
            let pass = fft.convolve_pass(&kernel, &*be);
            let mut fused = base.clone();
            let mut scratch = vec![Complex64::ZERO; pass.scratch_len()];
            for grid in fused.chunks_mut(n) {
                pass.run(grid, &mut scratch);
            }
            for (a, b) in fused.iter().zip(&staged) {
                assert_eq!(*a, *b, "{}: ConvolvePass != staged convolve", be.name());
            }
        }
    }

    #[test]
    fn batched_matches_sequential() {
        let fft = Fft3::new(4, 4, 4);
        let count = 7;
        let mut batch = signal(fft.len() * count, 0.2);
        let mut seq = batch.clone();
        fft.forward_many(&mut batch, count);
        for grid in seq.chunks_mut(fft.len()) {
            fft.forward(grid);
        }
        for (a, b) in batch.iter().zip(&seq) {
            assert!((*a - *b).abs() < 1e-12);
        }
        // Inverse batch returns to the start.
        fft.inverse_many(&mut batch, count);
        let orig = signal(fft.len() * count, 0.2);
        for (a, b) in batch.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }
}
