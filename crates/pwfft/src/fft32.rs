//! Three-dimensional single-precision FFTs — the fp32 batched path of
//! the mixed-precision exchange pipeline.
//!
//! Mirrors [`Fft3`](crate::fft3::Fft3) over the same row-major layout:
//! per-line passes for the contiguous axis, and (for accelerator-style
//! backends) fused row-vector passes for the strided axes via
//! [`Plan32::forward_rows_with`]. Batching routes through
//! [`Backend::transform_batch32`], so the backend owns slab
//! decomposition and fp32 scratch pooling exactly as it does for fp64.

use crate::fft3::transpose_into;
use crate::plan32::Plan32;
use pwnum::backend::{Backend, GridTransform32};
use pwnum::precision::Complex32;

/// fp32 plans for a fixed 3-D grid shape.
#[derive(Clone, Debug)]
pub struct Fft32 {
    n0: usize,
    n1: usize,
    n2: usize,
    plan0: Plan32,
    plan1: Plan32,
    plan2: Plan32,
}

impl Fft32 {
    /// Creates fp32 plans for an `n0 x n1 x n2` grid.
    pub fn new(n0: usize, n1: usize, n2: usize) -> Self {
        assert!(n0 > 0 && n1 > 0 && n2 > 0, "grid dimensions must be positive");
        Fft32 {
            n0,
            n1,
            n2,
            plan0: Plan32::new(n0),
            plan1: Plan32::new(n1),
            plan2: Plan32::new(n2),
        }
    }

    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n0 * self.n1 * self.n2
    }

    /// True for the degenerate 1-point grid.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Grid dimensions `(n0, n1, n2)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n0, self.n1, self.n2)
    }

    /// Scratch elements required by [`Self::transform_with`]
    /// (line buffer + 1D plan scratch).
    #[inline]
    pub fn scratch_len(&self) -> usize {
        2 * self.n0.max(self.n1).max(self.n2)
    }

    /// Scratch elements required by [`Self::transform_fused`]: a plane
    /// transpose buffer, a grid-sized source copy for the row-vector
    /// passes, and the row buffers of the widest pass.
    #[inline]
    pub fn scratch_len_fused(&self) -> usize {
        self.n1 * self.n2 + self.len() + crate::plan::MAX_FAST_RADIX * self.n1 * self.n2
    }

    /// Transforms one fp32 grid in place with caller-provided scratch of
    /// at least [`Self::scratch_len`] elements (per-line passes).
    pub fn transform_with(
        &self,
        data: &mut [Complex32],
        scratch: &mut [Complex32],
        inverse: bool,
    ) {
        assert_eq!(data.len(), self.len(), "FFT32 buffer length mismatch");
        let (n0, n1, n2) = (self.n0, self.n1, self.n2);
        let scratch = &mut scratch[..self.scratch_len()];
        let (line, plan_scratch) = scratch.split_at_mut(n0.max(n1).max(n2));
        // Axis 2: contiguous lines.
        for row in data.chunks_mut(n2) {
            if inverse {
                self.plan2.inverse_with(row, plan_scratch);
            } else {
                self.plan2.forward_with(row, plan_scratch);
            }
        }
        // Axis 1: stride n2 within each i0-plane.
        for i0 in 0..n0 {
            let plane = &mut data[i0 * n1 * n2..(i0 + 1) * n1 * n2];
            for i2 in 0..n2 {
                for i1 in 0..n1 {
                    line[i1] = plane[i1 * n2 + i2];
                }
                let seg = &mut line[..n1];
                if inverse {
                    self.plan1.inverse_with(seg, plan_scratch);
                } else {
                    self.plan1.forward_with(seg, plan_scratch);
                }
                for i1 in 0..n1 {
                    plane[i1 * n2 + i2] = line[i1];
                }
            }
        }
        // Axis 0: stride n1*n2.
        let stride = n1 * n2;
        for i12 in 0..stride {
            for i0 in 0..n0 {
                line[i0] = data[i0 * stride + i12];
            }
            let seg = &mut line[..n0];
            if inverse {
                self.plan0.inverse_with(seg, plan_scratch);
            } else {
                self.plan0.forward_with(seg, plan_scratch);
            }
            for i0 in 0..n0 {
                data[i0 * stride + i12] = line[i0];
            }
        }
    }

    /// Fused-pass variant of [`Self::transform_with`]: *every* axis runs
    /// as an fp32 row-vector FFT ([`Plan32::forward_rows_with`]) — whole
    /// contiguous rows per butterfly, twice the SIMD lanes of the fp64
    /// path. The contiguous axis 2, whose per-line transforms are
    /// recursion-dominated at plane-wave grid sizes, is handled by a
    /// cheap per-plane transpose so it vectorizes like the strided axes
    /// (the CPU analog of the coalesced multi-line passes of the paper's
    /// GPU FFT). Results are value-identical to the per-line variant
    /// (the row-vector kernels perform the same per-lane arithmetic and
    /// the transposes are exact). `scratch` needs at least
    /// [`Self::scratch_len_fused`] elements.
    pub fn transform_fused(
        &self,
        data: &mut [Complex32],
        scratch: &mut [Complex32],
        inverse: bool,
    ) {
        assert_eq!(data.len(), self.len(), "FFT32 buffer length mismatch");
        let (n1, n2) = (self.n1, self.n2);
        let scratch = &mut scratch[..self.scratch_len_fused()];
        let (tbuf, rows_scratch) = scratch.split_at_mut(n1 * n2);
        // Axis 2: per i0-plane, transpose to (n2, n1) so i2 becomes the
        // slow index, one row-vector FFT over n2 rows of n1 lanes,
        // transpose back.
        for plane in data.chunks_mut(n1 * n2) {
            for i1 in 0..n1 {
                for i2 in 0..n2 {
                    tbuf[i2 * n1 + i1] = plane[i1 * n2 + i2];
                }
            }
            if inverse {
                self.plan2.inverse_rows_with(tbuf, n1, rows_scratch);
            } else {
                self.plan2.forward_rows_with(tbuf, n1, rows_scratch);
            }
            for i2 in 0..n2 {
                for i1 in 0..n1 {
                    plane[i1 * n2 + i2] = tbuf[i2 * n1 + i1];
                }
            }
        }
        // Axis 1: per i0-plane, one row-vector FFT over n1 rows of n2.
        for plane in data.chunks_mut(n1 * n2) {
            if inverse {
                self.plan1.inverse_rows_with(plane, n2, rows_scratch);
            } else {
                self.plan1.forward_rows_with(plane, n2, rows_scratch);
            }
        }
        // Axis 0: one row-vector FFT over n0 rows of n1*n2.
        if inverse {
            self.plan0.inverse_rows_with(data, n1 * n2, rows_scratch);
        } else {
            self.plan0.forward_rows_with(data, n1 * n2, rows_scratch);
        }
    }

    /// A pass in the requested direction, using the fused row-vector
    /// variant when `backend` asks for fused grid passes.
    #[inline]
    pub fn pass_for(&self, backend: &dyn Backend, inverse: bool) -> FftPass32<'_> {
        FftPass32 { fft: self, inverse, fused: backend.fused_grid_passes() }
    }

    /// Batched fp32 forward transform routed through a compute backend.
    pub fn forward_many_with(&self, backend: &dyn Backend, data: &mut [Complex32], count: usize) {
        backend.transform_batch32(&self.pass_for(backend, false), data, count);
    }

    /// Batched fp32 inverse transform routed through a compute backend.
    pub fn inverse_many_with(&self, backend: &dyn Backend, data: &mut [Complex32], count: usize) {
        backend.transform_batch32(&self.pass_for(backend, true), data, count);
    }

    /// Batched fp32 filtered round trip (forward → real-kernel multiply
    /// → inverse, in place) — the screened-Poisson tile solve of the
    /// mixed-precision Fock path, at half the memory traffic of the
    /// fp64 round trip.
    pub fn convolve_many_with(
        &self,
        backend: &dyn Backend,
        data: &mut [Complex32],
        count: usize,
        kernel: &[f32],
    ) {
        assert_eq!(kernel.len(), self.len(), "convolve kernel/grid length mismatch");
        assert_eq!(data.len(), count * self.len(), "FFT32 batch length mismatch");
        if count == 0 {
            return;
        }
        self.forward_many_with(backend, data, count);
        backend.scale_by_real32(kernel, data);
        self.inverse_many_with(backend, data, count);
    }

    /// Scratch elements required by [`Self::convolve_grid_fused`].
    #[inline]
    pub fn scratch_len_convolve(&self) -> usize {
        let max_plane =
            (self.n0 * self.n1).max(self.n2 * self.n0).max(self.n1 * self.n2);
        2 * self.len() + crate::plan::MAX_FAST_RADIX * max_plane
    }

    /// fp32 twin of [`crate::fft3::Fft3::convolve_grid_fused`]: the whole
    /// screened-Poisson round trip over one fp32 grid as three
    /// transpose-rotated row-vector FFT passes per direction, with the
    /// `K(G)` multiply in between — all inside `scratch`, nothing
    /// returned to a pool mid-chain. Exact permutations plus lane-exact
    /// row butterflies in the per-line axis order keep this value-
    /// identical to the staged fp32 round trip.
    pub fn convolve_grid_fused(
        &self,
        grid: &mut [Complex32],
        kernel: &[f32],
        scratch: &mut [Complex32],
    ) {
        assert_eq!(grid.len(), self.len(), "FFT32 buffer length mismatch");
        assert_eq!(kernel.len(), self.len(), "convolve kernel/grid length mismatch");
        let (n0, n1, n2) = (self.n0, self.n1, self.n2);
        let scratch = &mut scratch[..self.scratch_len_convolve()];
        let (buf, rows_scratch) = scratch.split_at_mut(self.len());
        // Forward: [i0,i1,i2] -> [i2,(i0,i1)] -> [i1,(i2,i0)] -> [i0,(i1,i2)].
        transpose_into(grid, buf, n0 * n1, n2);
        self.plan2.forward_rows_with(buf, n0 * n1, rows_scratch);
        transpose_into(buf, grid, n2 * n0, n1);
        self.plan1.forward_rows_with(grid, n2 * n0, rows_scratch);
        transpose_into(grid, buf, n1 * n2, n0);
        self.plan0.forward_rows_with(buf, n1 * n2, rows_scratch);
        for (z, &k) in buf.iter_mut().zip(kernel) {
            *z = z.scale(k);
        }
        // Inverse: same rotation direction (axis order 2, 1, 0 again).
        transpose_into(buf, grid, n0 * n1, n2);
        self.plan2.inverse_rows_with(grid, n0 * n1, rows_scratch);
        transpose_into(grid, buf, n2 * n0, n1);
        self.plan1.inverse_rows_with(buf, n2 * n0, rows_scratch);
        transpose_into(buf, grid, n1 * n2, n0);
        self.plan0.inverse_rows_with(grid, n1 * n2, rows_scratch);
    }

    /// The fp32 filtered round trip as one [`GridTransform32`] — the
    /// `solve` operator of [`Backend::fused_pair_solve32`]. Fused-pass
    /// backends get the rotation-based chain; others run the staged
    /// per-line arithmetic inside the single pass.
    #[inline]
    pub fn convolve_pass<'f>(
        &'f self,
        kernel: &'f [f32],
        backend: &dyn Backend,
    ) -> ConvolvePass32<'f> {
        assert_eq!(kernel.len(), self.len(), "convolve kernel/grid length mismatch");
        ConvolvePass32 { fft: self, kernel, fused: backend.fused_grid_passes() }
    }
}

/// One direction of an [`Fft32`] as a batched fp32 transform pass — the
/// bridge to [`Backend::transform_batch32`].
#[derive(Clone, Copy, Debug)]
pub struct FftPass32<'f> {
    fft: &'f Fft32,
    inverse: bool,
    fused: bool,
}

impl GridTransform32 for FftPass32<'_> {
    fn grid_len(&self) -> usize {
        self.fft.len()
    }

    fn scratch_len(&self) -> usize {
        if self.fused {
            self.fft.scratch_len_fused()
        } else {
            self.fft.scratch_len()
        }
    }

    fn run(&self, grid: &mut [Complex32], scratch: &mut [Complex32]) {
        if self.fused {
            self.fft.transform_fused(grid, scratch, self.inverse);
        } else {
            self.fft.transform_with(grid, scratch, self.inverse);
        }
    }
}

/// The fp32 screened-Poisson round trip as a single [`GridTransform32`]
/// — what the fused fp32 pair-solve pipeline hands to
/// [`Backend::fused_pair_solve32`].
#[derive(Clone, Copy, Debug)]
pub struct ConvolvePass32<'f> {
    fft: &'f Fft32,
    kernel: &'f [f32],
    fused: bool,
}

impl GridTransform32 for ConvolvePass32<'_> {
    fn grid_len(&self) -> usize {
        self.fft.len()
    }

    fn scratch_len(&self) -> usize {
        if self.fused {
            self.fft.scratch_len_convolve()
        } else {
            self.fft.scratch_len()
        }
    }

    fn run(&self, grid: &mut [Complex32], scratch: &mut [Complex32]) {
        if self.fused {
            self.fft.convolve_grid_fused(grid, self.kernel, scratch);
        } else {
            self.fft.transform_with(grid, scratch, false);
            for (z, &k) in grid.iter_mut().zip(self.kernel) {
                *z = z.scale(k);
            }
            self.fft.transform_with(grid, scratch, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft3::Fft3;
    use pwnum::precision::{demote, demote_real, max_abs_diff32, promote};

    fn signal64(len: usize, seed: f64) -> Vec<pwnum::Complex64> {
        (0..len)
            .map(|j| {
                pwnum::c64((j as f64 * 0.31 + seed).sin(), (j as f64 * 0.17 - seed).cos())
            })
            .collect()
    }

    #[test]
    fn matches_fp64_within_fp32_tolerance() {
        let fft64 = Fft3::new(4, 6, 5);
        let fft32 = Fft32::new(4, 6, 5);
        let x = signal64(fft64.len(), 0.6);
        let mut y64 = x.clone();
        fft64.forward(&mut y64);
        let mut y32 = demote(&x);
        let mut scratch = vec![pwnum::precision::Complex32::ZERO; fft32.scratch_len()];
        fft32.transform_with(&mut y32, &mut scratch, false);
        let up = promote(&y32);
        let scale = y64.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
        for (a, b) in y64.iter().zip(&up) {
            assert!((*a - *b).abs() < 1e-5 * scale.max(1.0));
        }
    }

    #[test]
    fn fused_matches_per_line() {
        let fft = Fft32::new(4, 6, 10);
        let base = demote(&signal64(fft.len(), 1.2));
        for inverse in [false, true] {
            let mut a = base.clone();
            let mut sa = vec![pwnum::precision::Complex32::ZERO; fft.scratch_len()];
            fft.transform_with(&mut a, &mut sa, inverse);
            let mut b = base.clone();
            let mut sb = vec![pwnum::precision::Complex32::ZERO; fft.scratch_len_fused()];
            fft.transform_fused(&mut b, &mut sb, inverse);
            assert_eq!(max_abs_diff32(&a, &b), 0.0, "inverse={inverse}");
        }
    }

    #[test]
    fn batched_convolve_matches_fp64_on_both_backends() {
        let fft64 = Fft3::new(6, 6, 6);
        let fft32 = Fft32::new(6, 6, 6);
        let n = fft64.len();
        let count = 4;
        let kernel64: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 7) as f64)).collect();
        let kernel32 = demote_real(&kernel64);
        let base = signal64(n * count, 0.7);
        let mut refr: Option<Vec<pwnum::precision::Complex32>> = None;
        for be in [
            pwnum::backend::by_name("reference").unwrap(),
            pwnum::backend::by_name("blocked").unwrap(),
        ] {
            let mut want = base.clone();
            fft64.convolve_many_with(&*be, &mut want, count, &kernel64);
            let mut got = demote(&base);
            fft32.convolve_many_with(&*be, &mut got, count, &kernel32);
            let up = promote(&got);
            let scale = want.iter().map(|z| z.abs()).fold(0.0f64, f64::max);
            for (a, b) in want.iter().zip(&up) {
                assert!(
                    (*a - *b).abs() < 1e-5 * scale.max(1.0),
                    "{}: fp32 convolve drift",
                    be.name()
                );
            }
            // Both backends produce identical fp32 results (per-line and
            // fused passes are value-identical).
            match &refr {
                None => refr = Some(got),
                Some(r) => assert_eq!(max_abs_diff32(r, &got), 0.0, "backend mismatch"),
            }
        }
    }

    #[test]
    fn fused_convolve32_is_value_identical_to_staged() {
        // The fp32 fused convolve must equal the staged fp32 round trip
        // exactly (fp32 primitives never differ across paths), through
        // the ConvolvePass32 seam on both backends.
        for dims in [(6usize, 6usize, 6usize), (4, 6, 10)] {
            let fft = Fft32::new(dims.0, dims.1, dims.2);
            let n = fft.len();
            let kernel: Vec<f32> =
                (0..n).map(|i| 1.0f32 / (1.0 + (i % 7) as f32)).collect();
            let base = demote(&signal64(n * 2, 0.9));
            for be in [
                pwnum::backend::by_name("reference").unwrap(),
                pwnum::backend::by_name("blocked").unwrap(),
            ] {
                let mut staged = base.clone();
                fft.convolve_many_with(&*be, &mut staged, 2, &kernel);
                let pass = fft.convolve_pass(&kernel, &*be);
                use pwnum::backend::GridTransform32 as _;
                let mut fused = base.clone();
                let mut scratch =
                    vec![pwnum::precision::Complex32::ZERO; pass.scratch_len()];
                for grid in fused.chunks_mut(n) {
                    pass.run(grid, &mut scratch);
                }
                assert_eq!(
                    max_abs_diff32(&fused, &staged),
                    0.0,
                    "{}: fp32 ConvolvePass != staged on {dims:?}",
                    be.name()
                );
            }
        }
    }

    #[test]
    fn smooth_grid_roundtrip() {
        // The paper's non-power-of-two smooth dims at reduced size.
        let fft = Fft32::new(12, 9, 10);
        let be = pwnum::backend::by_name("blocked").unwrap();
        let base = demote(&signal64(fft.len() * 3, 0.2));
        let mut data = base.clone();
        fft.forward_many_with(&*be, &mut data, 3);
        fft.inverse_many_with(&*be, &mut data, 3);
        assert!(max_abs_diff32(&base, &data) < 1e-4);
    }
}
