//! Slab-decomposed distributed 3-D FFT over an [`mpisim`] rank group —
//! the grid dimension of the hierarchical band×grid parallelization.
//!
//! Layout: a group of `members` ranks (one band group's *grid
//! communicator*, in slab order) jointly owns an `n0 × n1 × n2` grid.
//! Rank `i` of the group holds the contiguous axis-0 plane slab
//! [`DistFft3::slab0`], stored row-major as `(i0_local, i1, i2)`. A full
//! 3-D transform runs the axis-2 (contiguous rows) and axis-1 (strided
//! lines within each local plane) passes locally, transposes to an
//! axis-1 slab layout with a group-scoped `alltoallv`, runs the axis-0
//! lines locally, and transposes back — the SPARC-style slab pipeline
//! (PAPERS.md, arXiv:2501.16572), with the Z-pass's data movement as the
//! only communication.
//!
//! Every 1-D line transform calls the *same* [`Plan`] entry points on
//! the same line data as the serial [`Fft3`](crate::Fft3) per-line path,
//! and the transposes only move data — so distributed results are
//! **bitwise identical** to the serial transform on matching grids (the
//! property the distributed Fock exchange's correctness tests pin down).

use crate::plan::Plan;
use mpisim::Comm;
use pwnum::complex::Complex64;
use pwnum::parallel::block_range;
use std::cell::{Cell, RefCell};

/// Plans plus group layout for one distributed grid.
#[derive(Clone, Debug)]
pub struct DistFft3 {
    n0: usize,
    n1: usize,
    n2: usize,
    plan0: Plan,
    plan1: Plan,
    plan2: Plan,
    members: Vec<usize>,
    /// 1-D transforms applied across all [`Self::forward`]/[`Self::inverse`]
    /// calls (per 3-D transform: one per line of each axis) — the
    /// FFT-volume counter the overlap tests assert against.
    transforms: Cell<u64>,
    /// Reused line/plan scratch: the exchange drives one transform per
    /// pair solve, so per-call allocation would churn on the hot path.
    scratch: RefCell<Vec<Complex64>>,
    /// Reused Z-pass assembly buffer (axis-1 slab layout).
    zbuf: RefCell<Vec<Complex64>>,
}

impl DistFft3 {
    /// Creates plans for an `n0 × n1 × n2` grid owned by the rank group
    /// `members` (world ranks in slab order; identical on every member).
    pub fn new(n0: usize, n1: usize, n2: usize, members: Vec<usize>) -> Self {
        assert!(n0 > 0 && n1 > 0 && n2 > 0, "grid dimensions must be positive");
        assert!(!members.is_empty(), "distributed FFT needs at least one rank");
        DistFft3 {
            n0,
            n1,
            n2,
            plan0: Plan::new(n0),
            plan1: Plan::new(n1),
            plan2: Plan::new(n2),
            members,
            transforms: Cell::new(0),
            scratch: RefCell::new(Vec::new()),
            zbuf: RefCell::new(Vec::new()),
        }
    }

    /// Grid dimensions `(n0, n1, n2)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.n0, self.n1, self.n2)
    }

    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.n0 * self.n1 * self.n2
    }

    /// True for the degenerate 1-point grid.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// The group's world ranks in slab order.
    #[inline]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Position of a world rank inside the group.
    pub fn group_index(&self, rank: usize) -> usize {
        self.members
            .iter()
            .position(|&r| r == rank)
            .expect("rank is not a member of this distributed FFT group")
    }

    /// Axis-0 plane range owned by group position `idx` (the resting
    /// slab layout).
    #[inline]
    pub fn slab0(&self, idx: usize) -> std::ops::Range<usize> {
        block_range(self.n0, self.members.len(), idx)
    }

    /// Axis-1 row range owned by group position `idx` during the Z-pass.
    #[inline]
    pub fn slab1(&self, idx: usize) -> std::ops::Range<usize> {
        block_range(self.n1, self.members.len(), idx)
    }

    /// Grid *points* owned by group position `idx` in the resting
    /// layout: the contiguous run of its axis-0 planes.
    pub fn slab0_points(&self, idx: usize) -> std::ops::Range<usize> {
        let planes = self.slab0(idx);
        let plane = self.n1 * self.n2;
        planes.start * plane..planes.end * plane
    }

    /// Number of locally owned grid points at group position `idx`.
    #[inline]
    pub fn local_len(&self, idx: usize) -> usize {
        self.slab0(idx).len() * self.n1 * self.n2
    }

    /// 1-D line transforms performed by this instance so far.
    #[inline]
    pub fn transform_count(&self) -> u64 {
        self.transforms.get()
    }

    /// Forward 3-D transform, in place over this rank's slab
    /// (unnormalized, matching [`crate::Fft3::forward`]).
    pub fn forward(&self, comm: &mut Comm, data: &mut [Complex64]) {
        self.transform(comm, data, false);
    }

    /// Inverse 3-D transform, in place over this rank's slab (normalized
    /// by `1/len`, matching [`crate::Fft3::inverse`]).
    pub fn inverse(&self, comm: &mut Comm, data: &mut [Complex64]) {
        self.transform(comm, data, true);
    }

    fn line(&self, plan: &Plan, seg: &mut [Complex64], scratch: &mut [Complex64], inverse: bool) {
        if inverse {
            plan.inverse_with(seg, scratch);
        } else {
            plan.forward_with(seg, scratch);
        }
        self.transforms.set(self.transforms.get() + 1);
    }

    fn transform(&self, comm: &mut Comm, data: &mut [Complex64], inverse: bool) {
        let me = self.group_index(comm.rank());
        let my0 = self.slab0(me);
        let (n0, n1, n2) = (self.n0, self.n1, self.n2);
        assert_eq!(data.len(), my0.len() * n1 * n2, "slab buffer length mismatch");
        let p = self.members.len();
        let mut scratch = self.scratch.borrow_mut();
        let need = 2 * n0.max(n1).max(n2);
        if scratch.len() < need {
            scratch.resize(need, Complex64::ZERO);
        }
        let (line, plan_scratch) = scratch.split_at_mut(n0.max(n1).max(n2));

        // Axis 2: contiguous local rows.
        for row in data.chunks_mut(n2) {
            self.line(&self.plan2, row, plan_scratch, inverse);
        }
        // Axis 1: strided lines within each local i0-plane (identical
        // gather/transform/scatter to the serial per-line path).
        for plane in data.chunks_mut(n1 * n2) {
            for i2 in 0..n2 {
                for i1 in 0..n1 {
                    line[i1] = plane[i1 * n2 + i2];
                }
                self.line(&self.plan1, &mut line[..n1], plan_scratch, inverse);
                for i1 in 0..n1 {
                    plane[i1 * n2 + i2] = line[i1];
                }
            }
        }

        if p == 1 {
            // Whole grid local: the axis-0 pass needs no transpose.
            let stride = n1 * n2;
            for i12 in 0..stride {
                for i0 in 0..n0 {
                    line[i0] = data[i0 * stride + i12];
                }
                self.line(&self.plan0, &mut line[..n0], plan_scratch, inverse);
                for i0 in 0..n0 {
                    data[i0 * stride + i12] = line[i0];
                }
            }
            return;
        }

        // Transpose to axis-1 slabs: member r receives, for each of its
        // i1 rows, every rank's local i0-planes' n2-rows — the Z-pass
        // `alltoallv` of the paper's grid decomposition.
        let chunks: Vec<Vec<Complex64>> = (0..p)
            .map(|r| {
                let r1 = self.slab1(r);
                let mut c = Vec::with_capacity(r1.len() * my0.len() * n2);
                for i1 in r1 {
                    for l0 in 0..my0.len() {
                        let at = (l0 * n1 + i1) * n2;
                        c.extend_from_slice(&data[at..at + n2]);
                    }
                }
                c
            })
            .collect();
        let parts = comm.alltoallv_group_auto(&self.members, chunks);

        // Assemble the (i1_local, i0, i2) buffer and run the axis-0 lines.
        let my1 = self.slab1(me);
        let mut zbuf = self.zbuf.borrow_mut();
        let zneed = my1.len() * n0 * n2;
        if zbuf.len() < zneed {
            zbuf.resize(zneed, Complex64::ZERO);
        }
        // Every element of the used prefix is overwritten below (the
        // received parts tile the (i1_local, i0) plane set exactly), so
        // reuse across calls is safe.
        let zbuf = &mut zbuf[..zneed];
        for (src, part) in parts.iter().enumerate() {
            let s0 = self.slab0(src);
            assert_eq!(part.len(), my1.len() * s0.len() * n2, "transpose chunk mismatch");
            let mut at = 0;
            for l1 in 0..my1.len() {
                for i0 in s0.clone() {
                    let dst = (l1 * n0 + i0) * n2;
                    zbuf[dst..dst + n2].copy_from_slice(&part[at..at + n2]);
                    at += n2;
                }
            }
        }
        for plane in zbuf.chunks_mut(n0 * n2) {
            for i2 in 0..n2 {
                for i0 in 0..n0 {
                    line[i0] = plane[i0 * n2 + i2];
                }
                self.line(&self.plan0, &mut line[..n0], plan_scratch, inverse);
                for i0 in 0..n0 {
                    plane[i0 * n2 + i2] = line[i0];
                }
            }
        }

        // Transpose back to the resting axis-0 slab layout.
        let back: Vec<Vec<Complex64>> = (0..p)
            .map(|r| {
                let r0 = self.slab0(r);
                let mut c = Vec::with_capacity(my1.len() * r0.len() * n2);
                for l1 in 0..my1.len() {
                    for i0 in r0.clone() {
                        let at = (l1 * n0 + i0) * n2;
                        c.extend_from_slice(&zbuf[at..at + n2]);
                    }
                }
                c
            })
            .collect();
        let parts = comm.alltoallv_group_auto(&self.members, back);
        for (src, part) in parts.iter().enumerate() {
            let s1 = self.slab1(src);
            assert_eq!(part.len(), s1.len() * my0.len() * n2, "transpose-back chunk mismatch");
            let mut at = 0;
            for i1 in s1 {
                for l0 in 0..my0.len() {
                    let dst = (l0 * n1 + i1) * n2;
                    data[dst..dst + n2].copy_from_slice(&part[at..at + n2]);
                    at += n2;
                }
            }
        }
    }

    /// Distributed filtered round trip (the slab twin of
    /// [`crate::Fft3::convolve_many_with`] at batch 1): forward
    /// transform, elementwise multiply by this rank's slab of the real
    /// `kernel` (full-grid table, indexed by [`Self::slab0_points`]),
    /// inverse transform — the screened-Poisson solve of the 2-D
    /// distributed Fock exchange.
    pub fn convolve_slab(&self, comm: &mut Comm, data: &mut [Complex64], kernel: &[f64]) {
        assert_eq!(kernel.len(), self.len(), "convolve kernel/grid length mismatch");
        let me = self.group_index(comm.rank());
        self.forward(comm, data);
        let pts = self.slab0_points(me);
        for (z, &k) in data.iter_mut().zip(&kernel[pts]) {
            *z = z.scale(k);
        }
        self.inverse(comm, data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_tile_the_grid() {
        let d = DistFft3::new(7, 6, 5, vec![0, 1, 2]);
        let total: usize = (0..3).map(|i| d.local_len(i)).sum();
        assert_eq!(total, d.len());
        assert_eq!(d.slab0(0), 0..3);
        assert_eq!(d.slab0(1), 3..5);
        assert_eq!(d.slab0(2), 5..7);
        assert_eq!(d.slab0_points(1), 3 * 30..5 * 30);
        assert_eq!(d.group_index(2), 2);
    }
}
