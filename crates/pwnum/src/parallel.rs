//! Minimal data-parallel helpers built on scoped threads.
//!
//! This plays the role OpenMP plays in the paper's node-level code: a
//! `parallel for` over independent chunks (bands, grid planes, matrix row
//! blocks). We deliberately avoid a global thread-pool dependency:
//! scoped threads keep all borrows safe without `unsafe`, and small
//! workloads (below the `MIN_PARALLEL*` thresholds) run inline so spawn
//! overhead never dominates tiny grids.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for data-parallel regions.
///
/// Defaults to the machine's available parallelism, clamped to `max`.
/// Respects the `PWDFT_NUM_THREADS` environment variable when set
/// (mirroring `OMP_NUM_THREADS` in the paper's runs).
pub fn num_threads(max: usize) -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let mut n = CACHED.load(Ordering::Relaxed);
    if n == 0 {
        n = std::env::var("PWDFT_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
            });
        CACHED.store(n, Ordering::Relaxed);
    }
    n.min(max).max(1)
}

/// Balanced contiguous block partition: the sub-range of `0..n_items`
/// owned by `part` of `n_parts`. The first `n_items % n_parts` parts get
/// one extra item, so sizes differ by at most one and the ranges tile
/// `0..n_items` exactly.
///
/// This is the single source of truth for every 1-D ownership map in the
/// workspace — band ranges over ranks, grid-point ranges for the
/// band↔grid transpose, and FFT slab planes in `pwfft`'s distributed
/// transform — so the layers can never disagree about who owns what.
pub fn block_range(n_items: usize, n_parts: usize, part: usize) -> std::ops::Range<usize> {
    assert!(n_parts > 0, "block_range needs at least one part");
    assert!(part < n_parts, "part {part} out of {n_parts}");
    let base = n_items / n_parts;
    let extra = n_items % n_parts;
    let start = part * base + part.min(extra);
    let len = base + usize::from(part < extra);
    start..start + len
}

/// Runs `body(start, end)` over disjoint index ranges covering `0..len`,
/// in parallel across up to `num_threads` workers.
///
/// `body` must be `Sync` because it is shared by all workers; disjointness
/// of the ranges is what makes per-range mutation safe at the call site
/// (callers split their output buffers with `chunks_mut`).
pub fn par_ranges<F>(len: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    // Below this size, scoped-thread spawn overhead exceeds the work;
    // run inline (tiny systems and unit tests hit this constantly).
    const MIN_PARALLEL: usize = 4096;
    let workers = if len < MIN_PARALLEL { 1 } else { num_threads(len) };
    if workers == 1 {
        body(0, len);
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|s| {
        for w in 0..workers {
            let start = w * chunk;
            let end = ((w + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let body = &body;
            s.spawn(move || body(start, end));
        }
    });
}

/// Applies `f` to every mutable chunk of `data` (each of `chunk_len`
/// elements, the last possibly shorter) in parallel, passing the chunk
/// index. This is the "parallel loop over bands" idiom: a wavefunction
/// array laid out band-major is processed band-by-band.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let n_chunks = data.len().div_ceil(chunk_len);
    if n_chunks <= 1 {
        if !data.is_empty() {
            f(0, data);
        }
        return;
    }
    // Spawning threads for small total work costs more than it saves.
    const MIN_PARALLEL_ELEMS: usize = 1 << 15;
    let workers =
        if data.len() < MIN_PARALLEL_ELEMS { 1 } else { num_threads(n_chunks) };
    if workers == 1 {
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            f(i, c);
        }
        return;
    }
    let counter = AtomicUsize::new(0);
    // Collect raw chunk boundaries up front so each worker can claim chunks
    // dynamically (load balancing for uneven per-band costs).
    let chunks: Vec<&mut [T]> = data.chunks_mut(chunk_len).collect();
    let slots: Vec<parking_slot::Slot<T>> = chunks
        .into_iter()
        .map(|c| parking_slot::Slot(std::sync::Mutex::new(Some(c))))
        .collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let counter = &counter;
            let slots = &slots;
            let f = &f;
            s.spawn(move || loop {
                let i = counter.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let chunk = slots[i].0.lock().unwrap().take().expect("chunk claimed twice");
                f(i, chunk);
            });
        }
    });
}

mod parking_slot {
    //! One-shot hand-off cell used by the dynamic scheduler above.
    pub struct Slot<'a, T>(pub std::sync::Mutex<Option<&'a mut [T]>>);
}

/// Parallel map over indices `0..len`, collecting results in order.
pub fn par_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); len];
    {
        let out_slice = &mut out[..];
        let f = &f;
        par_chunks_mut(out_slice, 1, move |i, c| {
            c[0] = f(i);
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn ranges_cover_everything_once() {
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        par_ranges(1000, |a, b| {
            for i in a..b {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn ranges_empty_is_noop() {
        par_ranges(0, |_, _| panic!("must not be called"));
    }

    #[test]
    fn chunks_mut_processes_all_chunks() {
        let mut data = vec![0u64; 37];
        par_chunks_mut(&mut data, 5, |idx, chunk| {
            for v in chunk.iter_mut() {
                *v = idx as u64 + 1;
            }
        });
        // 37 = 7 chunks of 5 + 1 chunk of 2.
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i / 5) as u64 + 1);
        }
    }

    #[test]
    fn par_map_ordered() {
        let v = par_map(100, |i| i * i);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i * i);
        }
    }

    #[test]
    fn num_threads_at_least_one() {
        assert!(num_threads(usize::MAX) >= 1);
        assert_eq!(num_threads(1), 1);
    }

    #[test]
    fn block_range_tiles_exactly() {
        for (n, p) in [(10, 3), (4, 4), (0, 2), (7, 1), (3, 5), (1728, 16)] {
            let mut next = 0;
            for r in 0..p {
                let range = block_range(n, p, r);
                assert_eq!(range.start, next, "n={n} p={p} r={r}");
                next = range.end;
                // Balanced: sizes differ by at most one.
                assert!(range.len() == n / p || range.len() == n / p + 1);
            }
            assert_eq!(next, n, "n={n} p={p} must be fully covered");
        }
    }

    #[test]
    fn block_range_matches_loop_of_counts() {
        // The incremental definition (start = sum of earlier counts) and
        // the closed form must agree.
        let (n, p) = (23, 6);
        let mut start = 0;
        for r in 0..p {
            let range = block_range(n, p, r);
            assert_eq!(range.start, start);
            start += range.len();
        }
    }
}
