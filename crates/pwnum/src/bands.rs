//! Tall-and-skinny kernels over band-major wavefunction blocks.
//!
//! A wavefunction block Φ holds `n_bands` orbitals, each a contiguous
//! vector of `band_len` grid/plane-wave coefficients, stored back-to-back
//! (band-major). The two hot operations of the PT-IM method on this layout
//! are
//!
//! * the overlap matrix `S = A^H B` (an N×N reduction over the grid,
//!   the `Φ*Φ` / `Φ*HΦ` of the paper), and
//! * the subspace rotation `B = A Q` (the basis change `φ = Φ Q` used by
//!   the occupation-matrix diagonalization optimization, Eq. 12).
//!
//! Both are parallelized over bands with scoped threads.

use crate::cmat::CMat;
use crate::complex::Complex64;
use crate::cvec::{axpy, dotc, zero_fill};
use crate::parallel::{par_chunks_mut, par_ranges};
use parking_lot::Mutex;

/// Splits a band-major buffer into per-band slices.
#[inline]
pub fn band(data: &[Complex64], band_len: usize, i: usize) -> &[Complex64] {
    &data[i * band_len..(i + 1) * band_len]
}

/// Mutable variant of [`band`].
#[inline]
pub fn band_mut(data: &mut [Complex64], band_len: usize, i: usize) -> &mut [Complex64] {
    &mut data[i * band_len..(i + 1) * band_len]
}

/// Number of bands in a band-major buffer.
#[inline]
pub fn n_bands(data: &[Complex64], band_len: usize) -> usize {
    debug_assert_eq!(data.len() % band_len, 0);
    data.len() / band_len
}

/// Overlap matrix `S[i][j] = <a_i | b_j>` between two band-major blocks.
///
/// `scale` multiplies every entry (grid quadrature weight `dV`).
pub fn overlap(a: &[Complex64], b: &[Complex64], band_len: usize, scale: f64) -> CMat {
    let na = n_bands(a, band_len);
    let nb = n_bands(b, band_len);
    let mut s = CMat::zeros(na, nb);
    {
        let rows: Vec<Mutex<&mut [Complex64]>> =
            s.as_mut_slice().chunks_mut(nb).map(Mutex::new).collect();
        par_ranges(na, |lo, hi| {
            for (i, row_m) in rows.iter().enumerate().take(hi).skip(lo) {
                let ai = band(a, band_len, i);
                let mut row = row_m.lock();
                for j in 0..nb {
                    row[j] = dotc(ai, band(b, band_len, j)).scale(scale);
                }
            }
        });
    }
    s
}

/// Subspace rotation `out_j = sum_i a_i * q[i][j]` (i.e. `Out = A Q` with
/// bands as columns of the abstract Ng×N matrix).
///
/// `out` must have `band_len * q.cols()` elements.
pub fn rotate(a: &[Complex64], q: &CMat, band_len: usize, out: &mut [Complex64]) {
    let na = n_bands(a, band_len);
    assert_eq!(q.rows(), na, "rotate: Q row count must match band count");
    assert_eq!(out.len(), band_len * q.cols(), "rotate: bad output size");
    par_chunks_mut(out, band_len, |j, oj| {
        zero_fill(oj);
        for i in 0..na {
            let qij = q[(i, j)];
            if qij != Complex64::ZERO {
                axpy(qij, band(a, band_len, i), oj);
            }
        }
    });
}

/// `out_j += alpha * sum_i a_i * q[i][j]` — rotation with accumulation.
pub fn rotate_acc(
    alpha: Complex64,
    a: &[Complex64],
    q: &CMat,
    band_len: usize,
    out: &mut [Complex64],
) {
    let na = n_bands(a, band_len);
    assert_eq!(q.rows(), na, "rotate_acc: Q row count must match band count");
    assert_eq!(out.len(), band_len * q.cols(), "rotate_acc: bad output size");
    par_chunks_mut(out, band_len, |j, oj| {
        for i in 0..na {
            let w = alpha * q[(i, j)];
            if w != Complex64::ZERO {
                axpy(w, band(a, band_len, i), oj);
            }
        }
    });
}

/// Linear combination of two blocks: `out = ca*a + cb*b`, band-wise.
pub fn lincomb(
    ca: Complex64,
    a: &[Complex64],
    cb: Complex64,
    b: &[Complex64],
    out: &mut [Complex64],
) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    par_ranges(out.len(), |lo, hi| {
        // Disjoint ranges: re-slice locally. Safe because ranges never overlap.
        let optr = out.as_ptr() as *mut Complex64;
        let o = unsafe { std::slice::from_raw_parts_mut(optr.add(lo), hi - lo) };
        for (k, ov) in o.iter_mut().enumerate() {
            let idx = lo + k;
            *ov = ca * a[idx] + cb * b[idx];
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn make_block(nb: usize, len: usize, seed: f64) -> Vec<Complex64> {
        (0..nb * len)
            .map(|k| c64((k as f64 * 0.13 + seed).sin(), (k as f64 * 0.07 - seed).cos()))
            .collect()
    }

    #[test]
    fn overlap_matches_reference() {
        let (nb, len) = (4, 17);
        let a = make_block(nb, len, 0.2);
        let b = make_block(nb, len, 1.1);
        let s = overlap(&a, &b, len, 2.0);
        for i in 0..nb {
            for j in 0..nb {
                let expect = dotc(band(&a, len, i), band(&b, len, j)).scale(2.0);
                assert!((s[(i, j)] - expect).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn overlap_of_self_is_hermitian_psd() {
        let a = make_block(5, 23, 0.7);
        let s = overlap(&a, &a, 23, 1.0);
        assert!(s.hermiticity_error() < 1e-13);
        for i in 0..5 {
            assert!(s[(i, i)].re > 0.0);
        }
    }

    #[test]
    fn rotate_by_identity_is_copy() {
        let a = make_block(3, 11, 0.4);
        let mut out = vec![Complex64::ZERO; a.len()];
        rotate(&a, &CMat::identity(3), 11, &mut out);
        for (x, y) in a.iter().zip(&out) {
            assert!((*x - *y).abs() < 1e-15);
        }
    }

    #[test]
    fn rotate_matches_explicit_sum() {
        let (nb, len, nout) = (3, 9, 2);
        let a = make_block(nb, len, 0.9);
        let q = CMat::from_fn(nb, nout, |i, j| c64(i as f64 - j as f64, 0.5 * (i + j) as f64));
        let mut out = vec![Complex64::ZERO; len * nout];
        rotate(&a, &q, len, &mut out);
        for j in 0..nout {
            for g in 0..len {
                let mut expect = Complex64::ZERO;
                for i in 0..nb {
                    expect += band(&a, len, i)[g] * q[(i, j)];
                }
                assert!((band(&out, len, j)[g] - expect).abs() < 1e-13);
            }
        }
        // rotate_acc doubles the result when applied twice with alpha=1.
        let mut out2 = out.clone();
        rotate_acc(Complex64::ONE, &a, &q, len, &mut out2);
        for (x, y) in out.iter().zip(&out2) {
            assert!((y.abs() - 2.0 * x.abs()).abs() < 1e-12);
        }
    }

    #[test]
    fn rotation_preserves_overlap_under_unitary() {
        // Q unitary (a permutation + phase) => (AQ)^H (AQ) = Q^H S Q.
        let (nb, len) = (3, 29);
        let a = make_block(nb, len, 0.3);
        let mut q = CMat::zeros(3, 3);
        q[(0, 1)] = c64(0.0, 1.0);
        q[(1, 2)] = c64(1.0, 0.0);
        q[(2, 0)] = c64(-1.0, 0.0);
        let mut out = vec![Complex64::ZERO; a.len()];
        rotate(&a, &q, len, &mut out);
        let s = overlap(&a, &a, len, 1.0);
        let s_rot = overlap(&out, &out, len, 1.0);
        let expect = crate::gemm::gemm(
            Complex64::ONE,
            &q,
            crate::gemm::Op::ConjTrans,
            &s.matmul(&q),
            crate::gemm::Op::None,
            Complex64::ZERO,
            None,
        );
        assert!(s_rot.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn lincomb_midpoint() {
        let a = make_block(2, 8, 0.1);
        let b = make_block(2, 8, 2.2);
        let mut out = vec![Complex64::ZERO; a.len()];
        lincomb(c64(0.5, 0.0), &a, c64(0.5, 0.0), &b, &mut out);
        for k in 0..a.len() {
            assert!((out[k] - (a[k] + b[k]).scale(0.5)).abs() < 1e-15);
        }
    }
}
