//! BLAS-1 style kernels over slices of [`Complex64`].
//!
//! These are the innermost loops of the plane-wave code (element-wise
//! products on grids, dot products for overlap matrices, axpy updates in
//! the mixers), so they are written as straight slice iterations that the
//! compiler can unroll and vectorize, with explicit length asserts hoisted
//! out of the loops.

use crate::complex::Complex64;

/// `y += a * x` (complex axpy).
#[inline]
pub fn axpy(a: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi.mul_add(a, *yi);
    }
}

/// `y += a * x` with a real coefficient.
#[inline]
pub fn raxpy(a: f64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "raxpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        yi.re += a * xi.re;
        yi.im += a * xi.im;
    }
}

/// Scales `x` in place by a complex factor.
#[inline]
pub fn scale(a: Complex64, x: &mut [Complex64]) {
    for xi in x.iter_mut() {
        *xi *= a;
    }
}

/// Scales `x` in place by a real factor.
#[inline]
pub fn rscale(a: f64, x: &mut [Complex64]) {
    for xi in x.iter_mut() {
        xi.re *= a;
        xi.im *= a;
    }
}

/// Hermitian dot product `sum_i conj(x_i) * y_i` (left argument conjugated,
/// matching the physics convention `<x|y>`).
#[inline]
pub fn dotc(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "dotc length mismatch");
    let mut acc = Complex64::ZERO;
    for (xi, yi) in x.iter().zip(y) {
        acc = xi.conj().mul_add(*yi, acc);
    }
    acc
}

/// Unconjugated dot product `sum_i x_i * y_i`.
#[inline]
pub fn dotu(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "dotu length mismatch");
    let mut acc = Complex64::ZERO;
    for (xi, yi) in x.iter().zip(y) {
        acc = xi.mul_add(*yi, acc);
    }
    acc
}

/// Squared 2-norm `sum_i |x_i|^2`.
#[inline]
pub fn norm_sqr(x: &[Complex64]) -> f64 {
    x.iter().map(|z| z.norm_sqr()).sum()
}

/// 2-norm.
#[inline]
pub fn norm(x: &[Complex64]) -> f64 {
    norm_sqr(x).sqrt()
}

/// Element-wise product `out_i = a_i * b_i`.
#[inline]
pub fn hadamard(a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
    assert_eq!(a.len(), b.len(), "hadamard length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard output length mismatch");
    for ((o, ai), bi) in out.iter_mut().zip(a).zip(b) {
        *o = *ai * *bi;
    }
}

/// Element-wise conjugated product `out_i = conj(a_i) * b_i`.
///
/// This is the pair-density kernel of the Fock exchange operator
/// (`phi_k^* . phi_j` on the real-space grid, paper Alg. 2 line 11).
#[inline]
pub fn hadamard_conj(a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
    assert_eq!(a.len(), b.len(), "hadamard_conj length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard_conj output length mismatch");
    for ((o, ai), bi) in out.iter_mut().zip(a).zip(b) {
        *o = ai.conj() * *bi;
    }
}

/// `acc_i += w * a_i * b_i` — accumulate a weighted element-wise product
/// (the `Vx phi_j += sigma_ik * phi_temp .* phi_i` update of Alg. 2).
#[inline]
pub fn hadamard_acc(w: Complex64, a: &[Complex64], b: &[Complex64], acc: &mut [Complex64]) {
    assert_eq!(a.len(), b.len(), "hadamard_acc length mismatch");
    assert_eq!(a.len(), acc.len(), "hadamard_acc output length mismatch");
    for ((o, ai), bi) in acc.iter_mut().zip(a).zip(b) {
        *o = (*ai * *bi).mul_add(w, *o);
    }
}

/// `acc_i += w * conj(a_i) * b_i` — the conjugated partner of
/// [`hadamard_acc`]: with a real screened kernel the Poisson solutions of
/// Hermitian pair densities obey `W_ji = conj(W_ij)`, so the pair-block
/// Fock scheduler scatters one solved `W_ij` into *both* target bands —
/// the swapped side through this kernel.
#[inline]
pub fn hadamard_acc_conj(w: Complex64, a: &[Complex64], b: &[Complex64], acc: &mut [Complex64]) {
    assert_eq!(a.len(), b.len(), "hadamard_acc_conj length mismatch");
    assert_eq!(a.len(), acc.len(), "hadamard_acc_conj output length mismatch");
    for ((o, ai), bi) in acc.iter_mut().zip(a).zip(b) {
        *o = (ai.conj() * *bi).mul_add(w, *o);
    }
}

/// Multiplies each element by a real diagonal: `x_i *= d_i`.
#[inline]
pub fn diag_mul(d: &[f64], x: &mut [Complex64]) {
    assert_eq!(d.len(), x.len(), "diag_mul length mismatch");
    for (xi, di) in x.iter_mut().zip(d) {
        xi.re *= *di;
        xi.im *= *di;
    }
}

/// Copies `src` into `dst`.
#[inline]
pub fn copy(src: &[Complex64], dst: &mut [Complex64]) {
    dst.copy_from_slice(src);
}

/// Sets every element to zero.
#[inline]
pub fn zero_fill(x: &mut [Complex64]) {
    x.fill(Complex64::ZERO);
}

/// Maximum absolute component difference between two vectors
/// (convergence metric for the SCF loops).
#[inline]
pub fn max_abs_diff(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn axpy_accumulates() {
        let x = vec![c64(1.0, 0.0), c64(0.0, 1.0)];
        let mut y = vec![c64(1.0, 1.0); 2];
        axpy(c64(0.0, 2.0), &x, &mut y);
        assert_eq!(y[0], c64(1.0, 3.0));
        assert_eq!(y[1], c64(-1.0, 1.0));
    }

    #[test]
    fn dotc_conjugates_left() {
        let x = vec![c64(0.0, 1.0)];
        let y = vec![c64(0.0, 1.0)];
        assert_eq!(dotc(&x, &y), c64(1.0, 0.0));
        assert_eq!(dotu(&x, &y), c64(-1.0, 0.0));
    }

    #[test]
    fn norms() {
        let x = vec![c64(3.0, 0.0), c64(0.0, 4.0)];
        assert!((norm_sqr(&x) - 25.0).abs() < 1e-15);
        assert!((norm(&x) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn hadamard_products() {
        let a = vec![c64(1.0, 1.0), c64(2.0, 0.0)];
        let b = vec![c64(0.0, 1.0), c64(0.5, 0.5)];
        let mut out = vec![Complex64::ZERO; 2];
        hadamard(&a, &b, &mut out);
        assert_eq!(out[0], c64(-1.0, 1.0));
        assert_eq!(out[1], c64(1.0, 1.0));
        hadamard_conj(&a, &b, &mut out);
        assert_eq!(out[0], c64(1.0, 1.0));

        let mut acc = vec![Complex64::ZERO; 2];
        hadamard_acc(c64(2.0, 0.0), &a, &b, &mut acc);
        assert_eq!(acc[0], c64(-2.0, 2.0));

        // conj variant: acc += w * conj(a) ⊙ b.
        let mut accc = vec![Complex64::ZERO; 2];
        hadamard_acc_conj(c64(2.0, 0.0), &a, &b, &mut accc);
        assert_eq!(accc[0], c64(2.0, 2.0));
        assert_eq!(accc[1], c64(2.0, 2.0));
    }

    #[test]
    fn diag_and_scale() {
        let mut x = vec![c64(1.0, 2.0), c64(-1.0, 0.5)];
        diag_mul(&[2.0, -1.0], &mut x);
        assert_eq!(x[0], c64(2.0, 4.0));
        assert_eq!(x[1], c64(1.0, -0.5));
        rscale(0.5, &mut x);
        assert_eq!(x[0], c64(1.0, 2.0));
    }

    #[test]
    fn max_diff_metric() {
        let a = vec![c64(1.0, 0.0), c64(0.0, 0.0)];
        let b = vec![c64(1.0, 0.0), c64(0.0, 3.0)];
        assert!((max_abs_diff(&a, &b) - 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = vec![Complex64::ZERO; 2];
        let b = vec![Complex64::ZERO; 3];
        let _ = dotc(&a, &b);
    }
}
