//! General matrix-matrix multiplication for [`CMat`].
//!
//! Sizes here are the *subspace* dimension N (bands), so the strategy is
//! simplicity + thread parallelism over output rows: both operands are
//! packed into contiguous row-major panels so the inner kernel is a
//! contiguous complex dot product, then rows of `C` are computed in
//! parallel. Tall-and-skinny products against wavefunction blocks live in
//! [`crate::bands`].

use crate::cmat::CMat;
use crate::complex::Complex64;
use crate::cvec::dotu;
use crate::parallel::par_ranges;
use parking_lot::Mutex;
use std::borrow::Cow;

/// How an operand enters the product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as-is.
    None,
    /// Use the transpose.
    Trans,
    /// Use the conjugate transpose.
    ConjTrans,
}

/// Packs `op(A)` row-major, borrowing when the stored layout already
/// matches (`Op::None` costs nothing).
pub(crate) fn packed(a: &CMat, op: Op) -> Cow<'_, CMat> {
    match op {
        Op::None => Cow::Borrowed(a),
        Op::Trans => Cow::Owned(a.transpose()),
        Op::ConjTrans => Cow::Owned(a.herm()),
    }
}

/// Packs `op(B)` *transposed* row-major — row `j` holds column `j` of
/// `op(B)` — borrowing when `op_b` already yields contiguous columns
/// (`Op::Trans` costs nothing).
pub(crate) fn packed_cols(b: &CMat, op: Op) -> Cow<'_, CMat> {
    match op {
        Op::None => Cow::Owned(b.transpose()),
        Op::Trans => Cow::Borrowed(b),
        Op::ConjTrans => {
            // (B^H)^T = conj(B): the stored layout, conjugated.
            Cow::Owned(CMat::from_fn(b.rows(), b.cols(), |r, c| b[(r, c)].conj()))
        }
    }
}

/// Computes `alpha * op(A) * op(B) + beta * C0`.
///
/// When `c0` is `None`, `beta` must multiply an implicit zero matrix.
pub fn gemm(
    alpha: Complex64,
    a: &CMat,
    op_a: Op,
    b: &CMat,
    op_b: Op,
    beta: Complex64,
    c0: Option<&CMat>,
) -> CMat {
    let ap = packed(a, op_a);
    // Pack op(B) transposed so each output column is a contiguous row.
    let bp = packed_cols(b, op_b);
    let (m, k) = (ap.rows(), ap.cols());
    let n = bp.rows();
    assert_eq!(k, bp.cols(), "gemm inner dimension mismatch");
    if let Some(c0) = c0 {
        assert_eq!((c0.rows(), c0.cols()), (m, n), "gemm C dimension mismatch");
    }

    let mut c = CMat::zeros(m, n);
    {
        let rows: Vec<Mutex<&mut [Complex64]>> =
            c.as_mut_slice().chunks_mut(n).map(Mutex::new).collect();
        par_ranges(m, |lo, hi| {
            for (i, crow_m) in rows.iter().enumerate().take(hi).skip(lo) {
                let arow = ap.row(i);
                let mut crow = crow_m.lock();
                for j in 0..n {
                    let mut v = (dotu(arow, bp.row(j))) * alpha;
                    if let Some(c0) = c0 {
                        v += beta * c0[(i, j)];
                    }
                    crow[j] = v;
                }
            }
        });
    }
    c
}

/// Convenience: `A^H * B`.
pub fn herm_matmul(a: &CMat, b: &CMat) -> CMat {
    gemm(Complex64::ONE, a, Op::ConjTrans, b, Op::None, Complex64::ZERO, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn naive(a: &CMat, b: &CMat) -> CMat {
        let mut c = CMat::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = Complex64::ZERO;
                for l in 0..a.cols() {
                    s += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn test_mat(r: usize, c: usize, phase: f64) -> CMat {
        CMat::from_fn(r, c, |i, j| {
            c64(
                ((i * 7 + j * 3) as f64 * 0.37 + phase).sin(),
                ((i as f64) - 0.5 * j as f64 + phase).cos(),
            )
        })
    }

    #[test]
    fn matches_naive_product() {
        let a = test_mat(5, 7, 0.1);
        let b = test_mat(7, 4, 0.9);
        let c = gemm(Complex64::ONE, &a, Op::None, &b, Op::None, Complex64::ZERO, None);
        assert!(c.max_abs_diff(&naive(&a, &b)) < 1e-13);
    }

    #[test]
    fn transposed_operands() {
        let a = test_mat(6, 3, 0.2);
        let b = test_mat(6, 5, 0.4);
        // A^T * B
        let c = gemm(Complex64::ONE, &a, Op::Trans, &b, Op::None, Complex64::ZERO, None);
        assert!(c.max_abs_diff(&naive(&a.transpose(), &b)) < 1e-13);
        // A^H * B
        let ch = herm_matmul(&a, &b);
        assert!(ch.max_abs_diff(&naive(&a.herm(), &b)) < 1e-13);
        // A * B^H with scaling
        let d = test_mat(4, 3, 1.3);
        let e = gemm(c64(0.0, 2.0), &d, Op::None, &a, Op::ConjTrans, Complex64::ZERO, None);
        assert!(e.max_abs_diff(&naive(&d, &a.herm()).scaled(c64(0.0, 2.0))) < 1e-13);
    }

    #[test]
    fn beta_accumulation() {
        let a = test_mat(3, 3, 0.5);
        let b = test_mat(3, 3, 0.8);
        let c0 = test_mat(3, 3, 2.0);
        let c = gemm(Complex64::ONE, &a, Op::None, &b, Op::None, c64(-1.0, 0.0), Some(&c0));
        let expect = naive(&a, &b).sub(&c0);
        assert!(c.max_abs_diff(&expect) < 1e-13);
    }

    #[test]
    fn herm_product_of_self_is_hermitian() {
        let a = test_mat(8, 5, 0.3);
        let s = herm_matmul(&a, &a);
        assert!(s.hermiticity_error() < 1e-13);
        // Diagonal entries are column norms: positive.
        for i in 0..5 {
            assert!(s[(i, i)].re > 0.0);
            assert!(s[(i, i)].im.abs() < 1e-13);
        }
    }
}
