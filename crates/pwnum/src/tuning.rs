//! Backend autotuning: candidate shape search + a persisted tuning table.
//!
//! The paper gets its speed by shaping the hybrid-functional hot loop to
//! the hardware (ARM many-core vs GPU); this module is the CPU analog —
//! a lightweight autotuner that, per problem configuration
//! (grid dims, band count, precision, backend), measures candidate
//! *shapes* — the GEMM register-block width, the FFT slab batch size,
//! and the Fock scheduler's `tile_bands` — with a plain wall-time
//! harness and records the winner in a versioned [`TuningTable`].
//!
//! Three invariants keep the subsystem safe to adopt everywhere:
//!
//! * **Values never change.** Every tunable shape is value-neutral by
//!   construction: block widths only change how many outputs share one
//!   sweep (per-element accumulation order is fixed), slab sizes only
//!   change how grids map to workers, and `tile_bands` only bounds
//!   scratch. Tuning can therefore never perturb physics.
//! * **Never slower than the defaults.** The default shapes are always
//!   part of the candidate list, and [`autotune_with`] picks the
//!   minimum of one common measurement set — so the selected shapes'
//!   recorded time is ≤ the defaults' by construction, and the
//!   `BENCH_fusion.json` gate (`autotuned ≥ 1.0× default`) is
//!   deterministic.
//! * **Safe fallback.** A missing, corrupt, or stale-version table file
//!   falls back to [`TunedShapes::default`] (the pre-autotuner
//!   constants); nothing in the hot path can fail because a tuning file
//!   is wrong.
//!
//! The table is persisted as hand-rolled JSON (this tree has no serde)
//! next to the `BENCH_*.json` artifacts; `PWDFT_TUNING_FILE` points the
//! process-wide [`global_table`] at a file, and backends consult it at
//! construction.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Format version of the persisted table. Readers reject any other
/// version (stale tables must re-tune, not mis-parse).
pub const TABLE_VERSION: u32 = 1;

/// The tunable shapes of one configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TunedShapes {
    /// Register-block width of the GEMM/band micro-kernels (output
    /// columns sharing one sweep over the packed row). Valid: 1..=8;
    /// widths only regroup outputs, never reorder a single element's
    /// accumulation, so results are identical for every width.
    pub gemm_block: usize,
    /// Maximum grids per batched-transform slab (one pooled scratch
    /// arena per slab). `0` = one slab per worker (the pre-autotuner
    /// behavior).
    pub fft_slab: usize,
    /// Pairs per Fock scheduler tile (bounds the staged pair arena; the
    /// fused pair-solve path streams pairs and ignores it).
    pub tile_bands: usize,
}

impl Default for TunedShapes {
    fn default() -> Self {
        // The constants the code base shipped with before autotuning.
        TunedShapes { gemm_block: 4, fft_slab: 0, tile_bands: 32 }
    }
}

/// Key identifying one tuned configuration. The wildcard key
/// (`dims = [0,0,0]`, `bands = 0`) holds backend-wide shapes applied at
/// backend construction, before problem sizes are known.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TuneKey {
    /// FFT grid dimensions (`[0,0,0]` = wildcard).
    pub dims: [usize; 3],
    /// Band count (`0` = wildcard).
    pub bands: usize,
    /// `"fp64"` or `"fp32"`.
    pub precision: String,
    /// Backend name (`"reference"` | `"blocked"`).
    pub backend: String,
}

impl TuneKey {
    /// The wildcard key for backend-wide shapes.
    pub fn wildcard(backend: &str, precision: &str) -> Self {
        TuneKey {
            dims: [0, 0, 0],
            bands: 0,
            precision: precision.to_string(),
            backend: backend.to_string(),
        }
    }
}

/// Why a table failed to load — callers treat every variant as "use the
/// defaults" but tests distinguish them.
#[derive(Debug, PartialEq, Eq)]
pub enum TableError {
    /// File missing/unreadable.
    Io(String),
    /// Text is not a table (malformed JSON / missing fields).
    Parse(String),
    /// A well-formed table from an incompatible format version.
    Version { found: u32, want: u32 },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::Io(e) => write!(f, "tuning table io error: {e}"),
            TableError::Parse(e) => write!(f, "tuning table parse error: {e}"),
            TableError::Version { found, want } => {
                write!(f, "tuning table version {found} (want {want})")
            }
        }
    }
}

/// The versioned shape table: `TuneKey → TunedShapes`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct TuningTable {
    entries: BTreeMap<TuneKey, TunedShapes>,
}

impl TuningTable {
    /// An empty table (every lookup falls back to defaults).
    pub fn new() -> Self {
        TuningTable::default()
    }

    /// Number of tuned configurations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no configuration has been tuned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the shapes tuned for `key` (exact match only).
    pub fn lookup(&self, key: &TuneKey) -> Option<TunedShapes> {
        self.entries.get(key).copied()
    }

    /// Shapes for `key`, falling back to the wildcard entry and then to
    /// the built-in defaults — the resolution the hot paths use.
    pub fn resolve(&self, key: &TuneKey) -> TunedShapes {
        self.lookup(key)
            .or_else(|| self.lookup(&TuneKey::wildcard(&key.backend, &key.precision)))
            .unwrap_or_default()
    }

    /// Records (or overwrites) the shapes for `key`.
    pub fn insert(&mut self, key: TuneKey, shapes: TunedShapes) {
        self.entries.insert(key, shapes);
    }

    /// Serializes to the versioned JSON format.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\n  \"version\": {TABLE_VERSION},\n  \"entries\": [\n");
        for (idx, (k, v)) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"precision\": \"{}\", \
                 \"dims\": [{}, {}, {}], \"bands\": {}, \"gemm_block\": {}, \
                 \"fft_slab\": {}, \"tile_bands\": {}}}{}\n",
                k.backend,
                k.precision,
                k.dims[0],
                k.dims[1],
                k.dims[2],
                k.bands,
                v.gemm_block,
                v.fft_slab,
                v.tile_bands,
                if idx + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses the versioned JSON format; rejects other versions.
    pub fn from_json(text: &str) -> Result<Self, TableError> {
        let version = field_u64(text, "version")
            .ok_or_else(|| TableError::Parse("missing \"version\"".into()))?
            as u32;
        if version != TABLE_VERSION {
            return Err(TableError::Version { found: version, want: TABLE_VERSION });
        }
        if !text.contains("\"entries\"") {
            return Err(TableError::Parse("missing \"entries\"".into()));
        }
        let mut table = TuningTable::new();
        // Flat-object scan, like the bench gate's parser: each entry is
        // one `{...}` with scalar fields plus the dims triple.
        for obj in text.split('{').skip(1) {
            if field_u64(obj, "version").is_some() {
                continue; // header object
            }
            let Some(backend) = field_str(obj, "backend") else { continue };
            let precision = field_str(obj, "precision")
                .ok_or_else(|| TableError::Parse("entry missing \"precision\"".into()))?;
            let dims = field_dims(obj)
                .ok_or_else(|| TableError::Parse("entry missing \"dims\"".into()))?;
            let bands = field_u64(obj, "bands")
                .ok_or_else(|| TableError::Parse("entry missing \"bands\"".into()))?;
            let gemm_block = field_u64(obj, "gemm_block")
                .ok_or_else(|| TableError::Parse("entry missing \"gemm_block\"".into()))?;
            let fft_slab = field_u64(obj, "fft_slab")
                .ok_or_else(|| TableError::Parse("entry missing \"fft_slab\"".into()))?;
            let tile_bands = field_u64(obj, "tile_bands")
                .ok_or_else(|| TableError::Parse("entry missing \"tile_bands\"".into()))?;
            if tile_bands == 0 || gemm_block == 0 || gemm_block > 8 {
                return Err(TableError::Parse(format!(
                    "entry has invalid shapes (gemm_block {gemm_block}, tile_bands {tile_bands})"
                )));
            }
            table.insert(
                TuneKey { dims, bands: bands as usize, precision, backend },
                TunedShapes {
                    gemm_block: gemm_block as usize,
                    fft_slab: fft_slab as usize,
                    tile_bands: tile_bands as usize,
                },
            );
        }
        Ok(table)
    }

    /// Loads a table from `path`, rejecting corrupt or stale files.
    pub fn load(path: &str) -> Result<Self, TableError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| TableError::Io(e.to_string()))?;
        Self::from_json(&text)
    }

    /// Writes the table to `path` (the artifact uploaded by CI).
    /// Staged through [`crate::persist::atomic_write`]: a bench run
    /// killed mid-save leaves the previous table intact instead of a
    /// truncated JSON that [`Self::load`] would reject.
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        crate::persist::atomic_write(path, self.to_json().as_bytes())
    }
}

/// Extracts the `u64` after `"key": ` in a flat JSON object slice.
fn field_u64(obj: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}', ']', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts the string after `"key": "` in a flat JSON object slice.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let at = obj.find(&tag)? + tag.len();
    let rest = obj[at..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts the `"dims": [a, b, c]` triple.
fn field_dims(obj: &str) -> Option<[usize; 3]> {
    let at = obj.find("\"dims\":")? + "\"dims\":".len();
    let rest = obj[at..].trim_start().strip_prefix('[')?;
    let inner = &rest[..rest.find(']')?];
    let mut it = inner.split(',').map(|v| v.trim().parse::<usize>());
    let (a, b, c) = (it.next()?.ok()?, it.next()?.ok()?, it.next()?.ok()?);
    Some([a, b, c])
}

// ---------------------------------------------------------------------
// The process-wide table
// ---------------------------------------------------------------------

/// Environment variable naming the tuning-table file the process loads
/// once at first use (and that [`autotune_with`] persists back to when
/// the caller asks).
pub const TUNING_FILE_ENV: &str = "PWDFT_TUNING_FILE";

/// The process-wide tuning table, loaded once from [`TUNING_FILE_ENV`]
/// (empty — i.e. all-defaults — when the variable is unset or the file
/// is missing/corrupt/stale).
pub fn global_table() -> &'static Mutex<TuningTable> {
    static GLOBAL: OnceLock<Mutex<TuningTable>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let table = std::env::var(TUNING_FILE_ENV)
            .ok()
            .and_then(|path| TuningTable::load(&path).ok())
            .unwrap_or_default();
        Mutex::new(table)
    })
}

/// Backend-wide shapes from the process table (wildcard entry), used at
/// backend construction before problem sizes are known. Falls back to
/// [`TunedShapes::default`].
pub fn backend_defaults(backend: &str) -> TunedShapes {
    let table = global_table().lock().unwrap();
    table.resolve(&TuneKey::wildcard(backend, "fp64"))
}

/// The `tile_bands` the default [`TuneKey`] resolution yields — what
/// `FockOptions::default()` uses instead of a hard-coded constant.
pub fn default_tile_bands() -> usize {
    backend_defaults("blocked").tile_bands
}

// ---------------------------------------------------------------------
// The autotune harness
// ---------------------------------------------------------------------

/// Index of the fastest measurement; ties break to the *earlier*
/// candidate, so selection is deterministic given the measured times
/// (and the defaults, listed first, win all ties).
pub fn select_best(times: &[f64]) -> usize {
    assert!(!times.is_empty(), "select_best: no candidates");
    let mut best = 0;
    for (i, &t) in times.iter().enumerate().skip(1) {
        if t.is_finite() && t < times[best] {
            best = i;
        }
    }
    best
}

/// Median of `reps` wall-clock timings of `run` — the deterministic-
/// selection measurement primitive (median damps scheduler noise; no
/// virtual clock is involved, by design: shapes are tuned to the real
/// machine).
pub fn median_wall_secs(reps: usize, mut run: impl FnMut()) -> f64 {
    assert!(reps > 0, "median_wall_secs: reps must be positive");
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// One autotune outcome: the selected shapes plus the full measurement
/// record (the rows `BENCH_fusion.json` reports).
#[derive(Clone, Debug, PartialEq)]
pub struct AutotuneReport {
    /// The winning shapes (recorded in the table under the key).
    pub shapes: TunedShapes,
    /// `(candidate, median seconds)` per candidate, in candidate order.
    /// Empty when the key was already tuned (cache hit).
    pub measurements: Vec<(TunedShapes, f64)>,
    /// Median seconds of the default shapes (first candidate).
    pub default_secs: f64,
    /// Median seconds of the winning shapes (≤ `default_secs` by
    /// construction — the winner is the argmin of a set containing the
    /// defaults).
    pub tuned_secs: f64,
    /// True when the shapes came from the table without measuring.
    pub cached: bool,
}

/// Tunes `key` in `table`: returns the cached shapes when present,
/// otherwise measures every candidate with `measure` (candidate →
/// median seconds), records the argmin, and returns the full report.
///
/// The default shapes are always measured (prepended when absent from
/// `candidates`), so the winner is never slower than the defaults *on
/// the recorded measurements* — the invariant the CI gate checks.
pub fn autotune_with(
    table: &mut TuningTable,
    key: TuneKey,
    candidates: &[TunedShapes],
    mut measure: impl FnMut(&TunedShapes) -> f64,
) -> AutotuneReport {
    if let Some(shapes) = table.lookup(&key) {
        return AutotuneReport {
            shapes,
            measurements: Vec::new(),
            default_secs: 0.0,
            tuned_secs: 0.0,
            cached: true,
        };
    }
    let defaults = TunedShapes::default();
    let mut cands: Vec<TunedShapes> = Vec::with_capacity(candidates.len() + 1);
    if candidates.first() != Some(&defaults) {
        cands.push(defaults);
    }
    cands.extend_from_slice(candidates);
    let measurements: Vec<(TunedShapes, f64)> =
        cands.iter().map(|c| (*c, measure(c))).collect();
    let times: Vec<f64> = measurements.iter().map(|&(_, t)| t).collect();
    let best = select_best(&times);
    let shapes = measurements[best].0;
    table.insert(key, shapes);
    AutotuneReport {
        shapes,
        default_secs: times[0],
        tuned_secs: times[best],
        measurements,
        cached: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(bands: usize) -> TuneKey {
        TuneKey {
            dims: [12, 12, 12],
            bands,
            precision: "fp64".into(),
            backend: "blocked".into(),
        }
    }

    #[test]
    fn table_round_trips_through_json() {
        let mut t = TuningTable::new();
        t.insert(key(64), TunedShapes { gemm_block: 8, fft_slab: 16, tile_bands: 16 });
        t.insert(
            TuneKey::wildcard("blocked", "fp64"),
            TunedShapes { gemm_block: 2, fft_slab: 0, tile_bands: 64 },
        );
        let json = t.to_json();
        let back = TuningTable::from_json(&json).expect("round trip");
        assert_eq!(t, back);
        assert_eq!(
            back.lookup(&key(64)),
            Some(TunedShapes { gemm_block: 8, fft_slab: 16, tile_bands: 16 })
        );
    }

    #[test]
    fn corrupt_and_stale_tables_fall_back_cleanly() {
        // Malformed JSON.
        assert!(matches!(
            TuningTable::from_json("not json at all"),
            Err(TableError::Parse(_))
        ));
        // Well-formed but wrong version.
        let stale = "{\n  \"version\": 99,\n  \"entries\": []\n}\n";
        assert_eq!(
            TuningTable::from_json(stale),
            Err(TableError::Version { found: 99, want: TABLE_VERSION })
        );
        // Entry with nonsense shapes.
        let bad = "{\n  \"version\": 1,\n  \"entries\": [\n    {\"backend\": \"blocked\", \
                   \"precision\": \"fp64\", \"dims\": [1, 1, 1], \"bands\": 1, \
                   \"gemm_block\": 0, \"fft_slab\": 0, \"tile_bands\": 0}\n  ]\n}\n";
        assert!(matches!(TuningTable::from_json(bad), Err(TableError::Parse(_))));
        // Missing file.
        assert!(matches!(
            TuningTable::load("/nonexistent/path/TUNING.json"),
            Err(TableError::Io(_))
        ));
        // The resolution path shrugs all of this off.
        let empty = TuningTable::new();
        assert_eq!(empty.resolve(&key(64)), TunedShapes::default());
    }

    #[test]
    fn resolve_prefers_exact_over_wildcard_over_default() {
        let mut t = TuningTable::new();
        assert_eq!(t.resolve(&key(64)), TunedShapes::default());
        t.insert(
            TuneKey::wildcard("blocked", "fp64"),
            TunedShapes { gemm_block: 2, fft_slab: 4, tile_bands: 8 },
        );
        assert_eq!(t.resolve(&key(64)).gemm_block, 2);
        t.insert(key(64), TunedShapes { gemm_block: 8, fft_slab: 32, tile_bands: 16 });
        assert_eq!(t.resolve(&key(64)).gemm_block, 8);
        // Different bands still hit the wildcard.
        assert_eq!(t.resolve(&key(128)).gemm_block, 2);
    }

    #[test]
    fn select_best_is_deterministic_with_tie_break_to_first() {
        assert_eq!(select_best(&[1.0, 2.0, 0.5]), 2);
        // Exact tie: the earlier candidate (the defaults) wins.
        assert_eq!(select_best(&[1.0, 1.0, 1.0]), 0);
        // NaN/inf never win.
        assert_eq!(select_best(&[2.0, f64::NAN, f64::INFINITY, 1.0]), 3);
    }

    #[test]
    fn autotune_is_deterministic_under_pinned_candidates() {
        // A pinned candidate list and a deterministic "measurement"
        // (candidate-dependent, not clock-dependent) must select the
        // same winner every run, and the winner must never beat the
        // defaults' recorded time on ties.
        let cands = [
            TunedShapes::default(),
            TunedShapes { gemm_block: 2, ..TunedShapes::default() },
            TunedShapes { gemm_block: 8, ..TunedShapes::default() },
        ];
        let fake = |s: &TunedShapes| match s.gemm_block {
            8 => 0.5,
            2 => 2.0,
            _ => 1.0,
        };
        let mut t1 = TuningTable::new();
        let r1 = autotune_with(&mut t1, key(64), &cands, fake);
        let mut t2 = TuningTable::new();
        let r2 = autotune_with(&mut t2, key(64), &cands, fake);
        assert_eq!(r1, r2);
        assert_eq!(r1.shapes.gemm_block, 8);
        assert!(!r1.cached);
        assert!(r1.tuned_secs <= r1.default_secs);
        assert_eq!(r1.measurements.len(), 3);

        // Second tune of the same key: cache hit, zero measurements.
        let mut calls = 0;
        let r3 = autotune_with(&mut t1, key(64), &cands, |s| {
            calls += 1;
            fake(s)
        });
        assert!(r3.cached);
        assert_eq!(calls, 0);
        assert_eq!(r3.shapes, r1.shapes);
    }

    #[test]
    fn autotune_always_measures_defaults_first() {
        // A candidate list without the defaults still records them, so
        // the ≥1.0× gate denominator exists.
        let cands = [TunedShapes { gemm_block: 2, ..TunedShapes::default() }];
        let mut t = TuningTable::new();
        let r = autotune_with(&mut t, key(32), &cands, |_| 1.0);
        assert_eq!(r.measurements.len(), 2);
        assert_eq!(r.measurements[0].0, TunedShapes::default());
        // Tie → defaults win.
        assert_eq!(r.shapes, TunedShapes::default());
    }

    #[test]
    fn save_and_load_via_tempfile() {
        let path = std::env::temp_dir().join("pwnum_tuning_test.json");
        let path = path.to_str().unwrap().to_string();
        let mut t = TuningTable::new();
        t.insert(key(64), TunedShapes { gemm_block: 8, fft_slab: 8, tile_bands: 16 });
        t.save(&path).unwrap();
        let back = TuningTable::load(&path).unwrap();
        assert_eq!(t, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn median_wall_secs_is_positive_and_monotonic_in_work() {
        // The slow body must defeat const-folding (LLVM knows the
        // closed form of Σi²), so every iteration is pinned with a
        // `black_box`: milliseconds of genuine work vs ~ns quick
        // samples, robust to scheduler-noise spikes on a loaded box.
        let quick = median_wall_secs(9, || {
            std::hint::black_box(0);
        });
        let mut acc = 0u64;
        let slow = median_wall_secs(3, || {
            for i in 0..2_000_000u64 {
                let i = std::hint::black_box(i);
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        });
        assert!(quick >= 0.0 && slow > quick);
    }
}
