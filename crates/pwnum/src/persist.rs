//! Durable-file primitives shared by every on-disk artifact of the
//! workspace: the autotuning table ([`crate::tuning`]) and the
//! checkpoint files of `ptim::resilience`.
//!
//! Two invariants matter for files a killed process may leave behind:
//!
//! * **Atomicity** — [`atomic_write`] stages the bytes in a sibling
//!   temporary file and `rename`s it over the destination, so readers
//!   only ever observe the old contents or the complete new contents,
//!   never a truncated mix. (POSIX `rename` within one directory is
//!   atomic; the temp file lives next to the target so the rename never
//!   crosses filesystems.)
//! * **Integrity** — [`fnv1a64`] is the checksum both consumers append
//!   to (or derive from) their payloads, so a file corrupted *after* a
//!   complete write (bit rot, manual edits) is still detected at load.

use std::io::Write;
use std::path::Path;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a hash of `bytes` — the workspace's file checksum.
/// Not cryptographic; it guards against truncation and bit corruption,
/// which is all a checkpoint/tuning file needs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Writes `bytes` to `path` atomically: stage in `<path>.tmp` (same
/// directory), flush, then rename over the destination. A crash at any
/// point leaves either the previous file or the new one — never a
/// partial write — which is what lets checkpoint rotations trust
/// whatever rename completed.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Contents must be durable before the rename publishes them,
        // otherwise a crash could expose a complete-looking empty file.
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            // Don't leave the orphan staging file behind on failure.
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_detects_single_bit_flips() {
        let mut data = vec![0u8; 256];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8;
        }
        let h = fnv1a64(&data);
        for i in 0..data.len() {
            data[i] ^= 1;
            assert_ne!(fnv1a64(&data), h, "flip at byte {i} undetected");
            data[i] ^= 1;
        }
    }

    #[test]
    fn atomic_write_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("pwnum_persist_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        // No staging file survives a successful write.
        assert!(!dir.join("table.json.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
