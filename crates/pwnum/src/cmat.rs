//! Dense row-major complex matrices.
//!
//! These hold the *small* square objects of the PT-IM method — the
//! occupation matrix σ, overlap matrices Φ\*Φ and Φ\*HΦ, rotation matrices
//! Q — whose dimension is the number of bands N (tens to a few thousand),
//! never the grid size. Tall-and-skinny wavefunction blocks use the
//! band-major kernels in [`crate::bands`] instead.

use crate::complex::{c64, Complex64};
use std::ops::{Index, IndexMut};

/// A dense `rows x cols` complex matrix, row-major.
#[derive(Clone, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl std::fmt::Debug for CMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "CMat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:?} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl CMat {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat { rows, cols, data: vec![Complex64::ZERO; rows * cols] }
    }

    /// Creates the identity matrix of dimension `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from a function of the index pair.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        CMat { rows, cols, data }
    }

    /// Builds a diagonal matrix from real entries.
    pub fn from_real_diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::from_re(d[i]);
        }
        m
    }

    /// Wraps an existing buffer (must have `rows*cols` elements).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "CMat::from_vec size mismatch");
        CMat { rows, cols, data }
    }

    /// Number of rows.
    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True for square matrices.
    #[inline(always)]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the underlying row-major buffer.
    #[inline(always)]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Borrow of row `r`.
    #[inline(always)]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline(always)]
    pub fn row_mut(&mut self, r: usize) -> &mut [Complex64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Conjugate transpose `A^H`.
    pub fn herm(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)].conj())
    }

    /// Plain transpose `A^T`.
    pub fn transpose(&self) -> CMat {
        CMat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Sum of diagonal entries.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest absolute entry difference against `other`.
    pub fn max_abs_diff(&self, other: &CMat) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// `self + other`.
    pub fn add(&self, other: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self.data.iter().zip(&other.data).map(|(a, b)| *a + *b).collect();
        CMat { rows: self.rows, cols: self.cols, data }
    }

    /// `self - other`.
    pub fn sub(&self, other: &CMat) -> CMat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self.data.iter().zip(&other.data).map(|(a, b)| *a - *b).collect();
        CMat { rows: self.rows, cols: self.cols, data }
    }

    /// `self * s` for a complex scalar.
    pub fn scaled(&self, s: Complex64) -> CMat {
        let data = self.data.iter().map(|a| *a * s).collect();
        CMat { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += s * other`.
    pub fn axpy(&mut self, s: Complex64, other: &CMat) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = b.mul_add(s, *a);
        }
    }

    /// Matrix product `self * rhs` (naive-blocked; see [`crate::gemm`] for
    /// the op-aware variant).
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        crate::gemm::gemm(
            Complex64::ONE,
            self,
            crate::gemm::Op::None,
            rhs,
            crate::gemm::Op::None,
            Complex64::ZERO,
            None,
        )
    }

    /// Matrix-vector product `self * x`.
    pub fn mul_vec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(self.cols, x.len(), "mul_vec dimension mismatch");
        let mut y = vec![Complex64::ZERO; self.rows];
        for (r, yv) in y.iter_mut().enumerate() {
            *yv = crate::cvec::dotu(self.row(r), x);
        }
        y
    }

    /// Hermitian part `(A + A^H)/2` — used to re-symmetrize σ after each
    /// PT-IM update (paper Alg. 1 line 13, "conjugate symmetrize σ").
    pub fn hermitian_part(&self) -> CMat {
        assert!(self.is_square());
        CMat::from_fn(self.rows, self.cols, |r, c| {
            (self[(r, c)] + self[(c, r)].conj()).scale(0.5)
        })
    }

    /// Measures departure from Hermiticity, `max |A - A^H|`.
    pub fn hermiticity_error(&self) -> f64 {
        assert!(self.is_square());
        let mut e: f64 = 0.0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                e = e.max((self[(r, c)] - self[(c, r)].conj()).abs());
            }
        }
        e
    }

    /// Commutator `[A, B] = AB - BA`.
    pub fn commutator(&self, b: &CMat) -> CMat {
        self.matmul(b).sub(&b.matmul(self))
    }

    /// Real parts of the diagonal.
    pub fn real_diag(&self) -> Vec<f64> {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)].re).collect()
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    #[inline(always)]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Builds a random Hermitian matrix with entries of magnitude ~1 from the
/// supplied uniform generator (test helper shared by several crates).
pub fn random_hermitian(n: usize, mut uniform: impl FnMut() -> f64) -> CMat {
    let mut a = CMat::zeros(n, n);
    for r in 0..n {
        for c in r..n {
            if r == c {
                a[(r, c)] = Complex64::from_re(uniform());
            } else {
                let z = c64(uniform(), uniform());
                a[(r, c)] = z;
                a[(c, r)] = z.conj();
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = CMat::from_fn(3, 3, |r, c| c64((r + 1) as f64, c as f64));
        let i = CMat::identity(3);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-15);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-15);
    }

    #[test]
    fn herm_is_involution() {
        let a = CMat::from_fn(2, 4, |r, c| c64(r as f64, c as f64 - 1.0));
        assert!(a.herm().herm().max_abs_diff(&a) < 1e-15);
        assert_eq!(a.herm().rows(), 4);
    }

    #[test]
    fn trace_and_commutator() {
        let a = CMat::from_fn(3, 3, |r, c| c64((r * 3 + c) as f64, 0.0));
        let b = CMat::identity(3).scaled(c64(2.0, 0.0));
        // [A, 2I] = 0
        assert!(a.commutator(&b).fro_norm() < 1e-14);
        assert_eq!(a.trace(), c64(12.0, 0.0));
    }

    #[test]
    fn hermitian_part_is_hermitian() {
        let a = CMat::from_fn(4, 4, |r, c| c64(r as f64 * 0.3 + 1.0, c as f64 - 2.0));
        let h = a.hermitian_part();
        assert!(h.hermiticity_error() < 1e-15);
        // Idempotent on Hermitian input.
        assert!(h.hermitian_part().max_abs_diff(&h) < 1e-15);
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = CMat::from_fn(3, 2, |r, c| c64(r as f64 + 1.0, c as f64));
        let x = vec![c64(1.0, 1.0), c64(-2.0, 0.5)];
        let xm = CMat::from_vec(2, 1, x.clone());
        let y = a.mul_vec(&x);
        let ym = a.matmul(&xm);
        for i in 0..3 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-14);
        }
    }

    #[test]
    fn diag_constructor() {
        let d = CMat::from_real_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), c64(6.0, 0.0));
        assert_eq!(d.real_diag(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn random_hermitian_is_hermitian() {
        let mut seed = 1u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = random_hermitian(6, &mut rng);
        assert!(a.hermiticity_error() < 1e-15);
    }
}
