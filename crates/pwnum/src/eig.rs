//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! PT-IM needs eigendecompositions of the occupation matrix σ (the
//! diagonalization optimization, Eq. 11) and of Rayleigh–Ritz matrices in
//! the ground-state solver. These are N×N with N = number of bands, so a
//! rock-solid O(N³)-per-sweep Jacobi iteration is the right trade: it is
//! unconditionally stable, preserves Hermitian structure exactly, and
//! produces orthonormal eigenvectors to machine precision.

use crate::cmat::CMat;
use crate::complex::Complex64;

/// Result of a Hermitian eigendecomposition: `A = V diag(w) V^H` with
/// eigenvalues ascending and `V` unitary (columns are eigenvectors).
#[derive(Clone, Debug)]
pub struct EigH {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose columns are the corresponding eigenvectors.
    pub vectors: CMat,
}

/// Off-diagonal Frobenius norm squared.
fn off_norm_sqr(a: &CMat) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for r in 0..n {
        for c in 0..n {
            if r != c {
                s += a[(r, c)].norm_sqr();
            }
        }
    }
    s
}

/// Diagonalizes a Hermitian matrix.
///
/// The input is symmetrized (`(A+A^H)/2`) first so tiny non-Hermitian
/// noise from upstream arithmetic cannot destabilize the iteration.
///
/// # Panics
/// Panics if `a` is not square or the iteration fails to converge in 100
/// sweeps (which for Jacobi on Hermitian input indicates NaNs in the data).
pub fn eigh(a: &CMat) -> EigH {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return EigH { values: vec![], vectors: CMat::zeros(0, 0) };
    }
    let mut a = a.hermitian_part();
    let mut v = CMat::identity(n);
    let scale: f64 = a.fro_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-30 * scale * scale;

    let mut converged = false;
    for _sweep in 0..100 {
        if off_norm_sqr(&a) <= tol {
            converged = true;
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = a[(p, q)];
                let m = apq.abs();
                if m <= 1e-300 {
                    continue;
                }
                let app = a[(p, p)].re;
                let aqq = a[(q, q)].re;
                let e = apq.scale(1.0 / m); // e^{i phi}
                let tau = (aqq - app) / (2.0 * m);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // J[p][p]=c, J[p][q]=s e, J[q][p]=-s conj(e), J[q][q]=c; A <- J^H A J.
                let se = e.scale(s);
                let sec = e.conj().scale(s);

                // Update rows/cols p and q for all other indices.
                for i in 0..n {
                    if i == p || i == q {
                        continue;
                    }
                    let aip = a[(i, p)];
                    let aiq = a[(i, q)];
                    let new_ip = aip.scale(c) - aiq * sec;
                    let new_iq = aip * se + aiq.scale(c);
                    a[(i, p)] = new_ip;
                    a[(p, i)] = new_ip.conj();
                    a[(i, q)] = new_iq;
                    a[(q, i)] = new_iq.conj();
                }
                // 2x2 block.
                let new_pp = c * c * app - 2.0 * s * c * m + s * s * aqq;
                let new_qq = s * s * app + 2.0 * s * c * m + c * c * aqq;
                a[(p, p)] = Complex64::from_re(new_pp);
                a[(q, q)] = Complex64::from_re(new_qq);
                a[(p, q)] = Complex64::ZERO;
                a[(q, p)] = Complex64::ZERO;

                // Accumulate eigenvectors: V <- V J.
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = vip.scale(c) - viq * sec;
                    v[(i, q)] = vip * se + viq.scale(c);
                }
            }
        }
    }
    assert!(
        converged || off_norm_sqr(&a) <= tol.max(1e-22 * scale * scale),
        "Jacobi eigensolver failed to converge (NaN input?)"
    );

    // Sort ascending by eigenvalue, permuting eigenvector columns.
    let mut idx: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a[(i, i)].re).collect();
    idx.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("NaN eigenvalue"));
    let values: Vec<f64> = idx.iter().map(|&i| diag[i]).collect();
    let vectors = CMat::from_fn(n, n, |r, c| v[(r, idx[c])]);
    EigH { values, vectors }
}

/// Reconstructs `V diag(w) V^H` — primarily a testing/diagnostic helper.
pub fn reconstruct(e: &EigH) -> CMat {
    let d = CMat::from_real_diag(&e.values);
    let vd = e.vectors.matmul(&d);
    crate::gemm::gemm(
        Complex64::ONE,
        &vd,
        crate::gemm::Op::None,
        &e.vectors,
        crate::gemm::Op::ConjTrans,
        Complex64::ZERO,
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmat::random_hermitian;
    use crate::complex::c64;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = CMat::from_real_diag(&[3.0, -1.0, 2.0]);
        let e = eigh(&a);
        assert_eq!(e.values.len(), 3);
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 2.0).abs() < 1e-14);
        assert!((e.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn pauli_y_eigenpairs() {
        // sigma_y = [[0, -i],[i, 0]] has eigenvalues ±1.
        let mut a = CMat::zeros(2, 2);
        a[(0, 1)] = c64(0.0, -1.0);
        a[(1, 0)] = c64(0.0, 1.0);
        let e = eigh(&a);
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 1.0).abs() < 1e-14);
        assert!(reconstruct(&e).max_abs_diff(&a) < 1e-13);
    }

    #[test]
    fn random_reconstruction_and_unitarity() {
        let mut seed = 42;
        for n in [1, 2, 3, 5, 8, 16, 33] {
            let a = random_hermitian(n, |
            | lcg(&mut seed));
            let e = eigh(&a);
            // Reconstruction.
            assert!(
                reconstruct(&e).max_abs_diff(&a) < 1e-11 * (n as f64),
                "reconstruction failed for n={n}"
            );
            // Unitarity of eigenvectors.
            let vhv = crate::gemm::herm_matmul(&e.vectors, &e.vectors);
            assert!(vhv.max_abs_diff(&CMat::identity(n)) < 1e-12, "V not unitary for n={n}");
            // Ascending order.
            for w in e.values.windows(2) {
                assert!(w[0] <= w[1] + 1e-14);
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let mut seed = 7;
        let a = random_hermitian(12, || lcg(&mut seed));
        let e = eigh(&a);
        let tr: f64 = e.values.iter().sum();
        assert!((tr - a.trace().re).abs() < 1e-11);
    }

    #[test]
    fn eigenvalue_equation_holds() {
        let mut seed = 99;
        let a = random_hermitian(9, || lcg(&mut seed));
        let e = eigh(&a);
        for k in 0..9 {
            let vk: Vec<Complex64> = (0..9).map(|i| e.vectors[(i, k)]).collect();
            let av = a.mul_vec(&vk);
            for i in 0..9 {
                assert!((av[i] - vk[i].scale(e.values[k])).abs() < 1e-11);
            }
        }
    }

    #[test]
    fn occupation_like_matrix() {
        // A density-matrix-like σ: Hermitian with eigenvalues in [0,1].
        let n = 10;
        let mut seed = 5;
        let q = {
            // Build a unitary from eigh of a random Hermitian.
            let h = random_hermitian(n, || lcg(&mut seed));
            eigh(&h).vectors
        };
        let d: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + ((i as f64 - 4.5) * 1.3).exp())).collect();
        let sigma = {
            let dm = CMat::from_real_diag(&d);
            let qd = q.matmul(&dm);
            crate::gemm::gemm(
                Complex64::ONE,
                &qd,
                crate::gemm::Op::None,
                &q,
                crate::gemm::Op::ConjTrans,
                Complex64::ZERO,
                None,
            )
        };
        let e = eigh(&sigma);
        let mut sorted = d.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in e.values.iter().zip(&sorted) {
            assert!((got - want).abs() < 1e-11);
            assert!(*got > -1e-12 && *got < 1.0 + 1e-12);
        }
    }
}
