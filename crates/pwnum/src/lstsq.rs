//! Small regularized least-squares solves for Anderson mixing.
//!
//! Anderson acceleration (paper Alg. 1 line 8, and the ground-state
//! density mixer) minimizes `|| R theta - r ||` over the mixing history,
//! with the history dimension capped at 20. The normal equations with a
//! relative Tikhonov term are accurate and cheap at that size, and the
//! regularization makes the scheme robust against a (nearly) rank-
//! deficient history — which routinely happens once the fixed point is
//! almost converged.

use crate::chol::solve_hpd;
use crate::cmat::CMat;
use crate::complex::Complex64;

/// Solves `min_x || A x - b ||_2` with Tikhonov regularization
/// `lambda_rel * trace(A^H A)/n * I`.
///
/// `A` is m×n with m ≥ n expected (the history design matrix). Returns the
/// coefficient vector of length n.
pub fn lstsq(a: &CMat, b: &[Complex64], lambda_rel: f64) -> Vec<Complex64> {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(b.len(), m, "lstsq: rhs length mismatch");
    assert!(n > 0, "lstsq: empty system");
    // Normal equations: (A^H A + lam I) x = A^H b.
    let mut ata = crate::gemm::herm_matmul(a, a);
    let tr: f64 = (0..n).map(|i| ata[(i, i)].re).sum();
    let lam = lambda_rel * (tr / n as f64).max(f64::MIN_POSITIVE);
    for i in 0..n {
        ata[(i, i)] += Complex64::from_re(lam);
    }
    let mut atb = vec![Complex64::ZERO; n];
    for i in 0..n {
        let mut s = Complex64::ZERO;
        for k in 0..m {
            s += a[(k, i)].conj() * b[k];
        }
        atb[i] = s;
    }
    let rhs = CMat::from_vec(n, 1, atb);
    let x = solve_hpd(&ata, &rhs).expect("regularized normal equations must be HPD");
    (0..n).map(|i| x[(i, 0)]).collect()
}

/// Real-valued convenience wrapper: solves the same problem when all data
/// are real (density mixing histories).
pub fn lstsq_real(a_cols: &[Vec<f64>], b: &[f64], lambda_rel: f64) -> Vec<f64> {
    let n = a_cols.len();
    assert!(n > 0);
    let m = b.len();
    let a = CMat::from_fn(m, n, |r, c| Complex64::from_re(a_cols[c][r]));
    let bc: Vec<Complex64> = b.iter().map(|&x| Complex64::from_re(x)).collect();
    lstsq(&a, &bc, lambda_rel).into_iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn exact_system_recovered() {
        // Square well-conditioned system: x should satisfy Ax = b.
        let a = CMat::from_fn(3, 3, |r, c| {
            if r == c {
                c64(2.0 + r as f64, 0.0)
            } else {
                c64(0.1, 0.05 * (r as f64 - c as f64))
            }
        });
        let x_true = vec![c64(1.0, -1.0), c64(0.5, 0.25), c64(-2.0, 0.0)];
        let b = a.mul_vec(&x_true);
        let x = lstsq(&a, &b, 1e-14);
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "component {i}: {:?}", x[i]);
        }
    }

    #[test]
    fn overdetermined_projects() {
        // A has orthogonal columns; LS solution is the coordinate projection.
        let a = CMat::from_fn(4, 2, |r, c| {
            Complex64::from_re(if r == c { 1.0 } else { 0.0 })
        });
        let b = vec![c64(3.0, 1.0), c64(-2.0, 0.0), c64(9.0, 9.0), c64(1.0, 1.0)];
        let x = lstsq(&a, &b, 1e-14);
        assert!((x[0] - c64(3.0, 1.0)).abs() < 1e-10);
        assert!((x[1] - c64(-2.0, 0.0)).abs() < 1e-10);
    }

    #[test]
    fn regularization_handles_rank_deficiency() {
        // Two identical columns: unregularized normal equations are singular.
        let a = CMat::from_fn(5, 2, |r, _| c64(r as f64 + 1.0, 0.0));
        let b: Vec<Complex64> = (0..5).map(|r| c64(2.0 * (r as f64 + 1.0), 0.0)).collect();
        let x = lstsq(&a, &b, 1e-8);
        // Symmetric split: each column gets weight ~1.
        assert!((x[0] - x[1]).abs() < 1e-6);
        assert!(((x[0] + x[1]).re - 2.0).abs() < 1e-5);
        assert!(x.iter().all(|z| z.is_finite()));
    }

    #[test]
    fn real_wrapper_matches() {
        let cols = vec![vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]];
        let b = vec![1.0, 2.0, 3.0];
        let x = lstsq_real(&cols, &b, 1e-12);
        // Exact solution of this consistent system is (1, 2).
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!((x[1] - 2.0).abs() < 1e-8);
    }
}
