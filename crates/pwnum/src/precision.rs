//! Mixed-precision compute subsystem: fp32 storage, conversion kernels,
//! error-compensated accumulation, and the per-stage precision policy.
//!
//! The paper's target platforms (ARM SVE, GPUs) run fp32 at twice the
//! FLOP rate and half the memory traffic of fp64. The dominant cost —
//! the screened-Poisson solves of the Fock exchange — tolerates reduced
//! precision because each solved pair potential `W_ij` is *accumulated*
//! into a well-conditioned fp64 state (the same playbook as PT-TDDFT on
//! Summit and GPU-accelerated hybrid SPARC; see PAPERS.md). This module
//! provides the pieces:
//!
//! * [`Complex32`] / [`c32`] — the single-precision complex scalar.
//! * [`CVec32`] / [`CMat32`] — fp32 grid/coefficient storage mirroring
//!   `Vec<Complex64>` / [`CMat`](crate::cmat::CMat).
//! * [`demote`] / [`promote`] and friends — conversion kernels between
//!   the fp64 state and fp32 compute buffers.
//! * [`hadamard_acc_promote`] — weighted elementwise accumulation of
//!   fp32 products into fp64 targets, optionally with two-sum (Kahan)
//!   compensation so the fp64 accumulation itself contributes no
//!   rounding beyond the fp32 inputs.
//! * [`StagePrecision`] / [`PrecisionPolicy`] — the per-stage precision
//!   map (exchange Poisson solves, subspace GEMM, FFT, propagator
//!   accumulation) threaded through `FockOptions` into every hot path,
//!   with the drift threshold the propagators' auto-promotion monitor
//!   trips on.
//!
//! The scalar kernels here are the *reference* implementations; the
//! [`Backend`](crate::backend::Backend) trait exposes them as
//! dispatchable primitives with a register-blocked `Blocked` variant
//! that must agree bitwise (same per-element arithmetic order).

use crate::complex::Complex64;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

// ---------------------------------------------------------------------
// Scalar type
// ---------------------------------------------------------------------

/// A complex number `re + i*im` in single precision.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Complex32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

/// Shorthand constructor: `c32(re, im)`.
#[inline(always)]
pub const fn c32(re: f32, im: f32) -> Complex32 {
    Complex32 { re, im }
}

impl Complex32 {
    /// The additive identity.
    pub const ZERO: Complex32 = c32(0.0, 0.0);
    /// The multiplicative identity.
    pub const ONE: Complex32 = c32(1.0, 0.0);
    /// The imaginary unit.
    pub const I: Complex32 = c32(0.0, 1.0);

    /// Creates a purely real value.
    #[inline(always)]
    pub const fn from_re(re: f32) -> Self {
        c32(re, 0.0)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c32(self.re, -self.im)
    }

    /// Squared modulus `|z|²`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline(always)]
    pub fn abs(self) -> f32 {
        self.re.hypot(self.im)
    }

    /// Multiplies by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f32) -> Self {
        c32(self.re * s, self.im * s)
    }

    /// `z * w + acc` fused form used by the fp32 micro-kernels. The
    /// arithmetic order matches [`Complex64::mul_add`] so the Blocked
    /// and Reference backends stay bitwise identical.
    #[inline(always)]
    pub fn mul_add(self, w: Complex32, acc: Complex32) -> Complex32 {
        c32(
            acc.re + self.re * w.re - self.im * w.im,
            acc.im + self.re * w.im + self.im * w.re,
        )
    }

    /// Demotes a double-precision value (round-to-nearest per component).
    #[inline(always)]
    pub fn from_c64(z: Complex64) -> Self {
        c32(z.re as f32, z.im as f32)
    }

    /// Promotes to double precision (exact).
    #[inline(always)]
    pub fn to_c64(self) -> Complex64 {
        Complex64::new(self.re as f64, self.im as f64)
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6e}{:+.6e}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    #[inline(always)]
    fn add(self, rhs: Complex32) -> Complex32 {
        c32(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    #[inline(always)]
    fn sub(self, rhs: Complex32) -> Complex32 {
        c32(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    #[inline(always)]
    fn mul(self, rhs: Complex32) -> Complex32 {
        c32(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex32 {
    type Output = Complex32;
    #[inline(always)]
    fn neg(self) -> Complex32 {
        c32(-self.re, -self.im)
    }
}

impl AddAssign for Complex32 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex32 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex32) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Sum for Complex32 {
    fn sum<I: Iterator<Item = Complex32>>(iter: I) -> Complex32 {
        iter.fold(Complex32::ZERO, |a, b| a + b)
    }
}

// ---------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------

/// Band-major fp32 coefficient/grid storage (the `Vec<Complex64>` analog
/// for demoted wavefunction blocks and pair-density tile arenas).
pub type CVec32 = Vec<Complex32>;

/// Dense row-major fp32 matrix for N×N subspace objects — the
/// [`CMat`](crate::cmat::CMat) analog for fp32 subspace GEMMs.
#[derive(Clone, Debug, PartialEq)]
pub struct CMat32 {
    rows: usize,
    cols: usize,
    data: CVec32,
}

impl CMat32 {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat32 { rows, cols, data: vec![Complex32::ZERO; rows * cols] }
    }

    /// Builds from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex32) -> Self {
        let mut m = CMat32::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Wraps a row-major element vector.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: CVec32) -> Self {
        assert_eq!(data.len(), rows * cols, "CMat32::from_vec shape mismatch");
        CMat32 { rows, cols, data }
    }

    /// Demotes an fp64 matrix.
    pub fn from_c64(m: &crate::cmat::CMat) -> Self {
        CMat32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&z| Complex32::from_c64(z)).collect(),
        }
    }

    /// Promotes to an fp64 matrix (exact).
    pub fn to_c64(&self) -> crate::cmat::CMat {
        crate::cmat::CMat::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|z| z.to_c64()).collect(),
        )
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row-major element slice.
    #[inline]
    pub fn as_slice(&self) -> &[Complex32] {
        &self.data
    }

    /// Mutable row-major element slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex32] {
        &mut self.data
    }

    /// One row as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Largest elementwise modulus difference to `other`.
    pub fn max_abs_diff(&self, other: &CMat32) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs() as f64)
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for CMat32 {
    type Output = Complex32;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &Complex32 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat32 {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex32 {
        &mut self.data[i * self.cols + j]
    }
}

// ---------------------------------------------------------------------
// Conversion kernels
// ---------------------------------------------------------------------

/// Demotes an fp64 slice to a fresh fp32 vector.
pub fn demote(src: &[Complex64]) -> CVec32 {
    src.iter().map(|&z| Complex32::from_c64(z)).collect()
}

/// Demotes into a caller-provided buffer (hot-loop variant).
pub fn demote_into(src: &[Complex64], dst: &mut [Complex32]) {
    assert_eq!(src.len(), dst.len(), "demote_into length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = Complex32::from_c64(s);
    }
}

/// Promotes an fp32 slice to a fresh fp64 vector (exact).
pub fn promote(src: &[Complex32]) -> Vec<Complex64> {
    src.iter().map(|z| z.to_c64()).collect()
}

/// Promotes into a caller-provided buffer (hot-loop variant; exact).
pub fn promote_into(src: &[Complex32], dst: &mut [Complex64]) {
    assert_eq!(src.len(), dst.len(), "promote_into length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_c64();
    }
}

/// Promote-accumulate `dst += src` (exact promotion, fp64 addition).
pub fn promote_acc(src: &[Complex32], dst: &mut [Complex64]) {
    assert_eq!(src.len(), dst.len(), "promote_acc length mismatch");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s.to_c64();
    }
}

/// Demotes a real fp64 kernel (e.g. `K(G)`) to fp32.
pub fn demote_real(src: &[f64]) -> Vec<f32> {
    src.iter().map(|&v| v as f32).collect()
}

/// Largest elementwise modulus difference between two fp32 slices.
pub fn max_abs_diff32(a: &[Complex32], b: &[Complex32]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff32 length mismatch");
    a.iter().zip(b).map(|(x, y)| (*x - *y).abs() as f64).fold(0.0, f64::max)
}

// ---------------------------------------------------------------------
// fp32 compute kernels (reference implementations)
// ---------------------------------------------------------------------

/// Elementwise conjugated product `out = conj(a) ⊙ b` in fp32 — the
/// pair-density kernel of the fp32 Fock path.
pub fn hadamard_conj32(a: &[Complex32], b: &[Complex32], out: &mut [Complex32]) {
    assert_eq!(a.len(), b.len(), "hadamard_conj32 length mismatch");
    assert_eq!(a.len(), out.len(), "hadamard_conj32 output length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x.conj() * *y;
    }
}

/// Elementwise real-kernel apply `field *= k`, cycling the kernel over
/// consecutive `k.len()`-sized chunks — the fp32 `K(G)·f_G` multiply.
pub fn scale_by_real32(k: &[f32], field: &mut [Complex32]) {
    assert!(!k.is_empty(), "scale_by_real32: empty kernel");
    assert!(
        field.len().is_multiple_of(k.len()),
        "scale_by_real32: field not a multiple of kernel"
    );
    for chunk in field.chunks_mut(k.len()) {
        for (f, &kv) in chunk.iter_mut().zip(k) {
            *f = f.scale(kv);
        }
    }
}

/// Weighted promote-accumulate `acc += w · a ⊙ b`: the fp32 operands are
/// promoted to fp64 and the product formed in fp64, so the only error
/// relative to the all-fp64 kernel is the fp32 rounding already present
/// in `a` and `b`. With `comp` supplied, each element runs a two-sum
/// (Kahan) compensated update so long accumulation chains add no fp64
/// rounding either — the "error-compensated fp64 accumulation" of the
/// mixed-precision exchange.
pub fn hadamard_acc_promote(
    w: f64,
    a: &[Complex32],
    b: &[Complex32],
    acc: &mut [Complex64],
    comp: Option<&mut [Complex64]>,
) {
    assert_eq!(a.len(), b.len(), "hadamard_acc_promote length mismatch");
    assert_eq!(a.len(), acc.len(), "hadamard_acc_promote output length mismatch");
    match comp {
        Some(comp) => {
            assert_eq!(a.len(), comp.len(), "hadamard_acc_promote comp length mismatch");
            for (((s, c), x), y) in acc.iter_mut().zip(comp.iter_mut()).zip(a).zip(b) {
                let term = (x.to_c64() * y.to_c64()).scale(w);
                two_sum_acc(term, s, c);
            }
        }
        None => {
            for ((s, x), y) in acc.iter_mut().zip(a).zip(b) {
                *s += (x.to_c64() * y.to_c64()).scale(w);
            }
        }
    }
}

/// Conjugated variant of [`hadamard_acc_promote`]:
/// `acc += w · conj(a) ⊙ b` — the swapped-side scatter of the
/// pair-symmetric Fock scheduler in fp32.
pub fn hadamard_acc_promote_conj(
    w: f64,
    a: &[Complex32],
    b: &[Complex32],
    acc: &mut [Complex64],
    comp: Option<&mut [Complex64]>,
) {
    assert_eq!(a.len(), b.len(), "hadamard_acc_promote_conj length mismatch");
    assert_eq!(a.len(), acc.len(), "hadamard_acc_promote_conj output length mismatch");
    match comp {
        Some(comp) => {
            assert_eq!(a.len(), comp.len(), "hadamard_acc_promote_conj comp length mismatch");
            for (((s, c), x), y) in acc.iter_mut().zip(comp.iter_mut()).zip(a).zip(b) {
                let term = (x.to_c64().conj() * y.to_c64()).scale(w);
                two_sum_acc(term, s, c);
            }
        }
        None => {
            for ((s, x), y) in acc.iter_mut().zip(a).zip(b) {
                *s += (x.to_c64().conj() * y.to_c64()).scale(w);
            }
        }
    }
}

/// One Kahan (two-sum compensated) update `sum += term`, carrying the
/// running compensation in `comp` (per component).
#[inline(always)]
fn two_sum_acc(term: Complex64, sum: &mut Complex64, comp: &mut Complex64) {
    let y = term - *comp;
    let t = *sum + y;
    *comp = (t - *sum) - y;
    *sum = t;
}

// ---------------------------------------------------------------------
// Precision policy
// ---------------------------------------------------------------------

/// Precision of one pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagePrecision {
    /// Full double precision — the reference path, exact to fp64.
    Fp64,
    /// fp32 compute with plain fp64 accumulation of the results.
    Fp32,
    /// fp32 compute with two-sum (Kahan) compensated fp64 accumulation —
    /// the recommended reduced mode: the fp64 accumulation chain itself
    /// contributes no rounding beyond the fp32 inputs. Compensation only
    /// matters for long accumulation chains, i.e. the `exchange` stage;
    /// for single-add stages (the subspace GEMM's one promote-add per
    /// element) `Fp32Promoted` behaves identically to [`Self::Fp32`].
    Fp32Promoted,
}

impl StagePrecision {
    /// True for the reduced (fp32-compute) modes.
    #[inline]
    pub fn reduced(self) -> bool {
        self != StagePrecision::Fp64
    }

    /// True when fp64 accumulation should carry two-sum compensation.
    #[inline]
    pub fn compensated(self) -> bool {
        self == StagePrecision::Fp32Promoted
    }
}

/// Per-stage precision map for the rt-TDDFT pipeline, threaded through
/// `FockOptions` into the exchange operator, the ACE compressor, and the
/// propagators.
///
/// Stage semantics:
///
/// * `exchange` — the Fock pair-tile solves: pair densities, the
///   screened-Poisson FFT round trip, and the scatter back into the
///   fp64 targets. Reduced modes demote the orbital block once per
///   apply and solve every `W_ij` in fp32.
/// * `subspace_gemm` — the ACE apply (`ξ^Hψ` overlap + `ξ C` rotation).
/// * `fft` — the transform precision of the reduced exchange solves:
///   with a reduced `exchange` stage, a reduced `fft` runs the Poisson
///   round trips on the fp32 plans (the fast path), while `Fp64`
///   promotes each pair tile and runs the fp64 plans — an
///   error-attribution mode separating storage/accumulation effects
///   from transform effects. A reduced `fft` *requires* a reduced
///   `exchange` stage ([`PrecisionPolicy::validate`] rejects the
///   combination otherwise, since no other pipeline consumes fp32
///   transforms yet).
/// * `accumulation` — the propagator state updates. **Only
///   [`StagePrecision::Fp64`] is supported**: the whole error budget of
///   the mixed pipeline rests on accumulating into a well-conditioned
///   fp64 state (DESIGN.md §"Precision error budget").
///
/// `promote_drift` is the propagators' auto-promotion threshold: when a
/// step's pre-constraint orthonormality drift exceeds it (or goes
/// non-finite) under a reduced policy, the step is recomputed at fp64.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrecisionPolicy {
    /// Fock exchange Poisson solves.
    pub exchange: StagePrecision,
    /// ACE / subspace GEMMs.
    pub subspace_gemm: StagePrecision,
    /// Standalone batched FFT fields.
    pub fft: StagePrecision,
    /// Propagator accumulation (must stay [`StagePrecision::Fp64`]).
    pub accumulation: StagePrecision,
    /// Orthonormality-drift threshold for per-step auto-promotion.
    pub promote_drift: f64,
}

impl PrecisionPolicy {
    /// All-fp64 policy — bit-identical to the pre-subsystem behavior.
    pub const fn fp64() -> Self {
        PrecisionPolicy {
            exchange: StagePrecision::Fp64,
            subspace_gemm: StagePrecision::Fp64,
            fft: StagePrecision::Fp64,
            accumulation: StagePrecision::Fp64,
            promote_drift: f64::INFINITY,
        }
    }

    /// The accelerator default (the paper's GPU playbook): fp32 exchange
    /// solves and FFTs with compensated fp64 accumulation, fp64 subspace
    /// GEMMs, and a loose drift guardrail that catches catastrophic fp32
    /// failures (NaNs, blow-ups) without tripping on routine rounding.
    pub const fn mixed() -> Self {
        PrecisionPolicy {
            exchange: StagePrecision::Fp32Promoted,
            subspace_gemm: StagePrecision::Fp64,
            fft: StagePrecision::Fp32,
            accumulation: StagePrecision::Fp64,
            promote_drift: 1e-3,
        }
    }

    /// True when any compute stage runs reduced.
    #[inline]
    pub fn any_reduced(&self) -> bool {
        self.exchange.reduced() || self.subspace_gemm.reduced() || self.fft.reduced()
    }

    /// True when the propagators should monitor drift and auto-promote.
    #[inline]
    pub fn monitors_drift(&self) -> bool {
        self.exchange.reduced() && self.promote_drift.is_finite()
    }

    /// The all-fp64 policy a tripped step is recomputed under (keeps the
    /// threshold for reporting).
    pub fn promoted(&self) -> Self {
        PrecisionPolicy {
            exchange: StagePrecision::Fp64,
            subspace_gemm: StagePrecision::Fp64,
            fft: StagePrecision::Fp64,
            accumulation: StagePrecision::Fp64,
            promote_drift: self.promote_drift,
        }
    }

    /// Rejects unsupported stage combinations.
    ///
    /// # Panics
    /// Panics when `accumulation` is not [`StagePrecision::Fp64`], or
    /// when `fft` is reduced without a reduced `exchange` stage.
    pub fn validate(&self) {
        assert!(
            self.accumulation == StagePrecision::Fp64,
            "PrecisionPolicy: propagator accumulation must stay Fp64 \
             (the fp32 pipeline is only safe against a well-conditioned \
             fp64 state; see DESIGN.md)"
        );
        assert!(
            self.exchange.reduced() || !self.fft.reduced(),
            "PrecisionPolicy: a reduced fft stage requires a reduced \
             exchange stage (the exchange Poisson solves are the only \
             consumer of fp32 transforms)"
        );
    }
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        PrecisionPolicy::fp64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn signal64(n: usize, seed: f64) -> Vec<Complex64> {
        (0..n)
            .map(|j| c64((j as f64 * 0.37 + seed).sin(), (j as f64 * 0.23 - seed).cos()))
            .collect()
    }

    #[test]
    fn arithmetic_identities() {
        let z = c32(3.0, -2.0);
        let w = c32(-1.5, 0.25);
        assert_eq!(z + w, c32(1.5, -1.75));
        assert_eq!(z * Complex32::ONE, z);
        assert_eq!(Complex32::I * Complex32::I, c32(-1.0, 0.0));
        assert_eq!(z.conj(), c32(3.0, 2.0));
        assert!((z.norm_sqr() - 13.0).abs() < 1e-6);
        let acc = z.mul_add(w, Complex32::ONE);
        let want = z * w + Complex32::ONE;
        assert!((acc - want).abs() < 1e-6);
    }

    #[test]
    fn demote_promote_roundtrip_error_bound() {
        let x = signal64(257, 0.9);
        let back = promote(&demote(&x));
        for (a, b) in x.iter().zip(&back) {
            // Round-to-nearest: per-component error ≤ 2^-24 · |component|.
            assert!((a.re - b.re).abs() <= a.re.abs() * 2f64.powi(-24));
            assert!((a.im - b.im).abs() <= a.im.abs() * 2f64.powi(-24));
        }
    }

    #[test]
    fn promotion_is_exact() {
        let x: CVec32 = (0..100)
            .map(|j| c32((j as f32 * 0.11).sin(), (j as f32 * 0.07).cos()))
            .collect();
        let up = promote(&x);
        let down = demote(&up);
        assert_eq!(x, down, "fp32 -> fp64 -> fp32 must be lossless");
    }

    #[test]
    fn compensated_accumulation_beats_naive() {
        // Accumulate many small terms onto a large fp64 value: the
        // compensated path must match an exact (higher-precision)
        // reference better than the naive path. Terms are chosen
        // fp32-representable so the only error source is accumulation.
        let n = 1;
        let reps = 200_000;
        let a = vec![c32(1.0, 0.0)];
        let b = vec![c32(1e-9, 0.0)];
        let mut naive = vec![c64(1.0, 0.0)];
        let mut comp_acc = vec![c64(1.0, 0.0)];
        let mut comp = vec![Complex64::ZERO; n];
        for _ in 0..reps {
            hadamard_acc_promote(1.0, &a, &b, &mut naive, None);
            hadamard_acc_promote(1.0, &a, &b, &mut comp_acc, Some(&mut comp));
        }
        let exact = 1.0 + reps as f64 * 1e-9_f32 as f64;
        let err_naive = (naive[0].re - exact).abs();
        let err_comp = (comp_acc[0].re - exact).abs();
        assert!(err_comp <= err_naive, "comp {err_comp} vs naive {err_naive}");
        assert!(err_comp < 1e-15);
    }

    #[test]
    fn hadamard_promote_matches_f64_kernel_on_exact_inputs() {
        // On inputs that are exactly fp32-representable the promote
        // kernels must reproduce the fp64 kernels bit for bit.
        let n = 64;
        let a32: CVec32 = (0..n).map(|j| c32(j as f32 * 0.5, -(j as f32) * 0.25)).collect();
        let b32: CVec32 = (0..n).map(|j| c32(1.0 - j as f32, j as f32 * 2.0)).collect();
        let a64 = promote(&a32);
        let b64 = promote(&b32);
        let w = -0.75;
        let mut acc32 = vec![c64(0.5, -0.5); n];
        let mut acc64 = acc32.clone();
        hadamard_acc_promote(w, &a32, &b32, &mut acc32, None);
        crate::cvec::hadamard_acc(Complex64::from_re(w), &a64, &b64, &mut acc64);
        assert_eq!(acc32, acc64);

        let mut acc32c = vec![c64(0.5, -0.5); n];
        let mut acc64c = acc32c.clone();
        hadamard_acc_promote_conj(w, &a32, &b32, &mut acc32c, None);
        crate::cvec::hadamard_acc_conj(Complex64::from_re(w), &a64, &b64, &mut acc64c);
        assert_eq!(acc32c, acc64c);
    }

    #[test]
    fn cmat32_roundtrip_and_indexing() {
        let m = CMat32::from_fn(3, 4, |i, j| c32(i as f32, j as f32));
        assert_eq!(m[(2, 3)], c32(2.0, 3.0));
        assert_eq!(m.row(1)[2], c32(1.0, 2.0));
        let up = m.to_c64();
        let down = CMat32::from_c64(&up);
        assert_eq!(m.max_abs_diff(&down), 0.0);
    }

    #[test]
    fn policy_presets() {
        let p = PrecisionPolicy::default();
        assert!(!p.any_reduced());
        assert!(!p.monitors_drift());
        p.validate();
        let m = PrecisionPolicy::mixed();
        assert!(m.any_reduced());
        assert!(m.monitors_drift());
        assert!(m.exchange.compensated());
        m.validate();
        let promoted = m.promoted();
        assert!(!promoted.any_reduced());
        assert_eq!(promoted.promote_drift, m.promote_drift);
    }

    #[test]
    #[should_panic(expected = "accumulation must stay Fp64")]
    fn reduced_accumulation_rejected() {
        let p = PrecisionPolicy {
            accumulation: StagePrecision::Fp32,
            ..PrecisionPolicy::mixed()
        };
        p.validate();
    }

    #[test]
    #[should_panic(expected = "requires a reduced exchange stage")]
    fn standalone_reduced_fft_rejected() {
        let p = PrecisionPolicy {
            fft: StagePrecision::Fp32,
            ..PrecisionPolicy::fp64()
        };
        p.validate();
    }
}
