//! Observability decorator over any [`Backend`].
//!
//! [`Traced`] wraps a [`BackendHandle`] and opens a `pwobs` span around
//! every hot primitive, so per-kernel time attribution (the paper's
//! Fig. 9 component split) comes from *one* seam instead of edits to
//! each backend implementation. The wrapped backend keeps its own
//! overrides of the default trait methods (`fused_pair_solve{,32}`,
//! batching strategy, pooling) because calls forward to the inner
//! handle, and internal calls the inner backend makes to itself do not
//! re-enter the decorator — a fused pair solve is therefore *one*
//! `xch.fused_pair_solve` span whose self time is the whole pipeline,
//! exactly how the paper attributes its exchange component.
//!
//! Span naming follows the `pwobs` phase convention:
//!
//! * `gemm.*` — GEMMs and band-space algebra (overlap / rotate /
//!   lincomb), fp64 and fp32,
//! * `grid.*` — grid-local elementwise kernels (Hadamard products,
//!   kernel×field multiplies),
//! * `fft.*` — batched grid transforms,
//! * `xch.*` — the fused exchange pair-solve pipelines.
//!
//! Buffer-pool management (`take_buffer` / `recycle_buffer` and kin) is
//! forwarded without spans: the calls are O(1) pool lookups whose cost
//! is far below timer resolution, and spanning them would double the
//! event volume for nothing.
//!
//! When the `pwobs` recorder is disabled every span degenerates to one
//! relaxed atomic load, so wrapping the process-wide handles (see
//! [`crate::backend::default_backend`]) costs nothing in production.

use crate::backend::{
    Backend, BackendHandle, GridTransform, GridTransform32, PairTask, PoolStats,
};
use crate::cmat::CMat;
use crate::complex::Complex64;
use crate::gemm::Op;
use crate::precision::{CMat32, Complex32};
use std::sync::Arc;

/// Span-instrumented wrapper around an inner backend.
#[derive(Debug)]
pub struct Traced {
    inner: BackendHandle,
}

impl Traced {
    /// Wrap `inner` (idempotent at the type level — double wrapping is
    /// harmless but pointless, so the constructor is the only way in).
    pub fn wrap(inner: BackendHandle) -> BackendHandle {
        Arc::new(Traced { inner })
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &BackendHandle {
        &self.inner
    }
}

impl Backend for Traced {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn gemm(
        &self,
        alpha: Complex64,
        a: &CMat,
        op_a: Op,
        b: &CMat,
        op_b: Op,
        beta: Complex64,
        c0: Option<&CMat>,
    ) -> CMat {
        let _s = pwobs::span("gemm.gemm");
        self.inner.gemm(alpha, a, op_a, b, op_b, beta, c0)
    }

    fn overlap(&self, a: &[Complex64], b: &[Complex64], band_len: usize, scale: f64) -> CMat {
        let _s = pwobs::span("gemm.overlap");
        self.inner.overlap(a, b, band_len, scale)
    }

    fn rotate(&self, a: &[Complex64], q: &CMat, band_len: usize, out: &mut [Complex64]) {
        let _s = pwobs::span("gemm.rotate");
        self.inner.rotate(a, q, band_len, out)
    }

    fn rotate_acc(
        &self,
        alpha: Complex64,
        a: &[Complex64],
        q: &CMat,
        band_len: usize,
        out: &mut [Complex64],
    ) {
        let _s = pwobs::span("gemm.rotate_acc");
        self.inner.rotate_acc(alpha, a, q, band_len, out)
    }

    fn lincomb(
        &self,
        ca: Complex64,
        a: &[Complex64],
        cb: Complex64,
        b: &[Complex64],
        out: &mut [Complex64],
    ) {
        let _s = pwobs::span("gemm.lincomb");
        self.inner.lincomb(ca, a, cb, b, out)
    }

    fn scale_by_real(&self, k: &[f64], field: &mut [Complex64]) {
        let _s = pwobs::span("grid.scale_by_real");
        self.inner.scale_by_real(k, field)
    }

    fn hadamard_conj(&self, a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
        let _s = pwobs::span("grid.hadamard_conj");
        self.inner.hadamard_conj(a, b, out)
    }

    fn hadamard_acc(&self, w: Complex64, a: &[Complex64], b: &[Complex64], acc: &mut [Complex64]) {
        let _s = pwobs::span("grid.hadamard_acc");
        self.inner.hadamard_acc(w, a, b, acc)
    }

    fn hadamard_acc_conj(
        &self,
        w: Complex64,
        a: &[Complex64],
        b: &[Complex64],
        acc: &mut [Complex64],
    ) {
        let _s = pwobs::span("grid.hadamard_acc_conj");
        self.inner.hadamard_acc_conj(w, a, b, acc)
    }

    fn transform_batch(&self, pass: &dyn GridTransform, data: &mut [Complex64], count: usize) {
        let _s = pwobs::span("fft.transform_batch");
        self.inner.transform_batch(pass, data, count)
    }

    fn fused_pair_solve(
        &self,
        solve: &dyn GridTransform,
        phi: &[Complex64],
        psi: &[Complex64],
        ng: usize,
        tasks: &[PairTask],
        out: &mut [Complex64],
    ) {
        let _s = pwobs::span("xch.fused_pair_solve");
        pwobs::counter_add("xch.pair_tasks", tasks.len() as u64);
        self.inner.fused_pair_solve(solve, phi, psi, ng, tasks, out)
    }

    fn fused_grid_passes(&self) -> bool {
        self.inner.fused_grid_passes()
    }

    fn take_buffer(&self, len: usize) -> Vec<Complex64> {
        self.inner.take_buffer(len)
    }

    fn take_buffer_copy(&self, src: &[Complex64]) -> Vec<Complex64> {
        self.inner.take_buffer_copy(src)
    }

    fn take_scratch(&self, len: usize) -> Vec<Complex64> {
        self.inner.take_scratch(len)
    }

    fn recycle_buffer(&self, buf: Vec<Complex64>) {
        self.inner.recycle_buffer(buf)
    }

    fn pool_stats(&self) -> PoolStats {
        self.inner.pool_stats()
    }

    fn reset_pool_peak(&self) {
        self.inner.reset_pool_peak()
    }

    fn gemm32(&self, alpha: Complex32, a: &CMat32, op_a: Op, b: &CMat32, op_b: Op) -> CMat32 {
        let _s = pwobs::span("gemm.gemm32");
        self.inner.gemm32(alpha, a, op_a, b, op_b)
    }

    fn overlap32(&self, a: &[Complex32], b: &[Complex32], band_len: usize, scale: f32) -> CMat32 {
        let _s = pwobs::span("gemm.overlap32");
        self.inner.overlap32(a, b, band_len, scale)
    }

    fn rotate_acc32(
        &self,
        alpha: Complex32,
        a: &[Complex32],
        q: &CMat32,
        band_len: usize,
        out: &mut [Complex32],
    ) {
        let _s = pwobs::span("gemm.rotate_acc32");
        self.inner.rotate_acc32(alpha, a, q, band_len, out)
    }

    fn scale_by_real32(&self, k: &[f32], field: &mut [Complex32]) {
        let _s = pwobs::span("grid.scale_by_real32");
        self.inner.scale_by_real32(k, field)
    }

    fn hadamard_conj32(&self, a: &[Complex32], b: &[Complex32], out: &mut [Complex32]) {
        let _s = pwobs::span("grid.hadamard_conj32");
        self.inner.hadamard_conj32(a, b, out)
    }

    fn hadamard_acc_promote(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        let _s = pwobs::span("grid.hadamard_acc_promote");
        self.inner.hadamard_acc_promote(w, a, b, acc, comp)
    }

    fn hadamard_acc_promote_conj(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        let _s = pwobs::span("grid.hadamard_acc_promote_conj");
        self.inner.hadamard_acc_promote_conj(w, a, b, acc, comp)
    }

    fn transform_batch32(&self, pass: &dyn GridTransform32, data: &mut [Complex32], count: usize) {
        let _s = pwobs::span("fft.transform_batch32");
        self.inner.transform_batch32(pass, data, count)
    }

    fn fused_pair_solve32(
        &self,
        solve: &dyn GridTransform32,
        phi: &[Complex32],
        psi: &[Complex32],
        ng: usize,
        tasks: &[PairTask],
        out: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        let _s = pwobs::span("xch.fused_pair_solve32");
        pwobs::counter_add("xch.pair_tasks_fp32", tasks.len() as u64);
        self.inner.fused_pair_solve32(solve, phi, psi, ng, tasks, out, comp)
    }

    fn take_scratch32(&self, len: usize) -> Vec<Complex32> {
        self.inner.take_scratch32(len)
    }

    fn recycle_buffer32(&self, buf: Vec<Complex32>) {
        self.inner.recycle_buffer32(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::by_name;
    use crate::complex::c64;

    #[test]
    fn traced_forwards_identity_and_results() {
        // `by_name` wraps; compare against bare implementations.
        let traced = by_name("reference").unwrap();
        let bare: BackendHandle = Arc::new(crate::backend::Reference);
        assert_eq!(traced.name(), "reference");
        assert_eq!(traced.fused_grid_passes(), bare.fused_grid_passes());

        let vals =
            [[c64(1.0, 2.0), c64(0.5, -1.0)], [c64(-1.0, 0.0), c64(2.0, 0.25)]];
        let a = CMat::from_fn(2, 2, |i, j| vals[i][j]);
        let got = traced.gemm(Complex64::ONE, &a, Op::None, &a, Op::ConjTrans, Complex64::ZERO, None);
        let want = bare.gemm(Complex64::ONE, &a, Op::None, &a, Op::ConjTrans, Complex64::ZERO, None);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(got[(i, j)], want[(i, j)]);
            }
        }

        let x = vec![c64(1.0, 1.0); 8];
        let y = vec![c64(2.0, -1.0); 8];
        let mut out_t = vec![Complex64::ZERO; 8];
        let mut out_b = vec![Complex64::ZERO; 8];
        traced.hadamard_conj(&x, &y, &mut out_t);
        bare.hadamard_conj(&x, &y, &mut out_b);
        assert_eq!(out_t, out_b);

        // Pool plumbing forwards to the wrapped backend.
        let blocked = by_name("blocked").unwrap();
        let buf = blocked.take_buffer(128);
        blocked.recycle_buffer(buf);
        assert!(blocked.pool_stats().fp64.peak_bytes > 0);
    }
}
