//! Cholesky factorization and triangular solves for Hermitian
//! positive-definite matrices.
//!
//! Used for (a) Cholesky-QR orthonormalization of wavefunction blocks
//! (`Φ (L^{-H})` with `Φ^HΦ = LL^H`), (b) the projector
//! `P̃ = Φ (Φ^HΦ)^{-1} Φ^H` of the PT-IM update, and (c) the ACE
//! construction (`-M = LL^H`, `ξ = W L^{-H}`, paper Sec. IV-A2).

use crate::cmat::CMat;
use crate::complex::Complex64;

/// Error for a factorization that encountered a non-positive pivot.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Index of the failing pivot.
    pub pivot: usize,
    /// Value of the failing pivot.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {} (value {:.3e})", self.pivot, self.value)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Computes the lower-triangular Cholesky factor `L` with `A = L L^H`.
pub fn cholesky(a: &CMat) -> Result<CMat, NotPositiveDefinite> {
    assert!(a.is_square(), "cholesky requires a square matrix");
    let n = a.rows();
    let mut l = CMat::zeros(n, n);
    for j in 0..n {
        // Diagonal pivot.
        let mut d = a[(j, j)].re;
        for k in 0..j {
            d -= l[(j, k)].norm_sqr();
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { pivot: j, value: d });
        }
        let ljj = d.sqrt();
        l[(j, j)] = Complex64::from_re(ljj);
        for i in j + 1..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)].conj();
            }
            l[(i, j)] = s.scale(1.0 / ljj);
        }
    }
    Ok(l)
}

/// Solves `L x = b` for lower-triangular `L` (forward substitution).
pub fn solve_lower(l: &CMat, b: &[Complex64]) -> Vec<Complex64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    for i in 0..n {
        for k in 0..i {
            let lik = l[(i, k)];
            let xk = x[k];
            x[i] -= lik * xk;
        }
        x[i] /= l[(i, i)];
    }
    x
}

/// Solves `L^H x = b` for lower-triangular `L` (backward substitution on
/// the conjugate transpose).
pub fn solve_lower_herm(l: &CMat, b: &[Complex64]) -> Vec<Complex64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    let mut x = b.to_vec();
    for i in (0..n).rev() {
        for k in i + 1..n {
            let lki = l[(k, i)].conj();
            let xk = x[k];
            x[i] -= lki * xk;
        }
        x[i] /= l[(i, i)].conj();
    }
    x
}

/// Solves the HPD system `A X = B` (with `B` given column-wise as a
/// matrix) through one Cholesky factorization.
pub fn solve_hpd(a: &CMat, b: &CMat) -> Result<CMat, NotPositiveDefinite> {
    let l = cholesky(a)?;
    let n = a.rows();
    let mut x = CMat::zeros(n, b.cols());
    for j in 0..b.cols() {
        let col: Vec<Complex64> = (0..n).map(|i| b[(i, j)]).collect();
        let y = solve_lower(&l, &col);
        let z = solve_lower_herm(&l, &y);
        for i in 0..n {
            x[(i, j)] = z[i];
        }
    }
    Ok(x)
}

/// Inverse of a lower-triangular matrix.
pub fn invert_lower(l: &CMat) -> CMat {
    let n = l.rows();
    let mut inv = CMat::zeros(n, n);
    for j in 0..n {
        let mut e = vec![Complex64::ZERO; n];
        e[j] = Complex64::ONE;
        let x = solve_lower(l, &e);
        for i in 0..n {
            inv[(i, j)] = x[i];
        }
    }
    inv
}

/// Inverse of an HPD matrix through its Cholesky factorization.
pub fn invert_hpd(a: &CMat) -> Result<CMat, NotPositiveDefinite> {
    solve_hpd(a, &CMat::identity(a.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use crate::gemm::{gemm, herm_matmul, Op};

    fn hpd(n: usize, seed: f64) -> CMat {
        // A = B^H B + n*I is HPD.
        let b = CMat::from_fn(n, n, |r, c| {
            c64(((r * 5 + c) as f64 * 0.31 + seed).sin(), ((r + c * 3) as f64 * 0.17).cos())
        });
        let mut a = herm_matmul(&b, &b);
        for i in 0..n {
            a[(i, i)] += Complex64::from_re(n as f64);
        }
        a
    }

    #[test]
    fn factorization_reconstructs() {
        for n in [1, 2, 5, 12] {
            let a = hpd(n, 0.4);
            let l = cholesky(&a).unwrap();
            let llh = gemm(Complex64::ONE, &l, Op::None, &l, Op::ConjTrans, Complex64::ZERO, None);
            assert!(llh.max_abs_diff(&a) < 1e-10 * n as f64, "n={n}");
            // L is lower triangular with positive real diagonal.
            for r in 0..n {
                assert!(l[(r, r)].re > 0.0);
                assert!(l[(r, r)].im.abs() < 1e-15);
                for c in r + 1..n {
                    assert_eq!(l[(r, c)], Complex64::ZERO);
                }
            }
        }
    }

    #[test]
    fn solves_agree_with_inverse() {
        let a = hpd(7, 1.1);
        let b = CMat::from_fn(7, 2, |r, c| c64(r as f64 - c as f64, 0.5 * r as f64));
        let x = solve_hpd(&a, &b).unwrap();
        let ax = a.matmul(&x);
        assert!(ax.max_abs_diff(&b) < 1e-9);

        let inv = invert_hpd(&a).unwrap();
        assert!(a.matmul(&inv).max_abs_diff(&CMat::identity(7)) < 1e-9);
    }

    #[test]
    fn triangular_solves() {
        let a = hpd(6, 0.9);
        let l = cholesky(&a).unwrap();
        let b: Vec<Complex64> = (0..6).map(|i| c64(i as f64, -(i as f64) * 0.5)).collect();
        let y = solve_lower(&l, &b);
        let ly = l.mul_vec(&y);
        for i in 0..6 {
            assert!((ly[i] - b[i]).abs() < 1e-11);
        }
        let z = solve_lower_herm(&l, &b);
        let lhz = l.herm().mul_vec(&z);
        for i in 0..6 {
            assert!((lhz[i] - b[i]).abs() < 1e-11);
        }
    }

    #[test]
    fn invert_lower_is_inverse() {
        let a = hpd(5, 2.0);
        let l = cholesky(&a).unwrap();
        let li = invert_lower(&l);
        assert!(l.matmul(&li).max_abs_diff(&CMat::identity(5)) < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = CMat::identity(3);
        a[(2, 2)] = c64(-1.0, 0.0);
        match cholesky(&a) {
            Err(e) => assert_eq!(e.pivot, 2),
            Ok(_) => panic!("indefinite matrix accepted"),
        }
    }
}
