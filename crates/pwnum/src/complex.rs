//! Double-precision complex numbers.
//!
//! The plane-wave code works exclusively with `f64` scalars, so a single
//! concrete [`Complex64`] type (rather than a generic one) keeps call sites
//! monomorphic and the inner loops friendly to the vectorizer.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i*im` in double precision.
#[derive(Clone, Copy, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        c64(re, im)
    }

    /// Creates a purely real complex number.
    #[inline(always)]
    pub const fn from_re(re: f64) -> Self {
        c64(re, 0.0)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        c64(self.re, -self.im)
    }

    /// Squared modulus `|z|^2` (avoids the square root of [`Self::abs`]).
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for overflow safety.
    #[inline(always)]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline(always)]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        c64(self.re * s, self.im * s)
    }

    /// Multiplicative inverse `1/z`.
    #[inline(always)]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        c64(self.re / d, -self.im / d)
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        c64(r * self.im.cos(), r * self.im.sin())
    }

    /// `exp(i*theta)` for a real phase `theta` (unit-modulus rotor).
    #[inline]
    pub fn cis(theta: f64) -> Self {
        c64(theta.cos(), theta.sin())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        if r == 0.0 {
            return Complex64::ZERO;
        }
        let half = 0.5 * (r + self.re);
        let re = half.max(0.0).sqrt();
        let im_mag = (0.5 * (r - self.re)).max(0.0).sqrt();
        c64(re, if self.im >= 0.0 { im_mag } else { -im_mag })
    }

    /// `z * w + acc` fused form used by the GEMM microkernels.
    #[inline(always)]
    pub fn mul_add(self, w: Complex64, acc: Complex64) -> Complex64 {
        c64(
            acc.re + self.re * w.re - self.im * w.im,
            acc.im + self.re * w.im + self.im * w.re,
        )
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+.6e}{:+.6e}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        c64(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        c64(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: f64) -> Complex64 {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: f64) -> Complex64 {
        c64(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        c64(self.re * rhs, self.im * rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: f64) -> Complex64 {
        c64(self.re / rhs, self.im / rhs)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        c64(self + rhs.re, rhs.im)
    }
}

impl Sub<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self - rhs.re, -rhs.im)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        c64(self * rhs.re, self * rhs.im)
    }
}

impl Div<Complex64> for f64 {
    type Output = Complex64;
    #[inline(always)]
    fn div(self, rhs: Complex64) -> Complex64 {
        Complex64::from_re(self) / rhs
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(3.0, -2.0);
        let w = c64(-1.5, 0.25);
        assert_eq!(z + w, c64(1.5, -1.75));
        assert_eq!(z - w, c64(4.5, -2.25));
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z + Complex64::ZERO, z);
        assert!(close(z / z, Complex64::ONE, 1e-15));
        assert!(close(z * z.inv(), Complex64::ONE, 1e-15));
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = c64(1.0, 2.0);
        assert_eq!(z.conj(), c64(1.0, -2.0));
        assert!((z.norm_sqr() - 5.0).abs() < 1e-15);
        assert!((z.abs() - 5f64.sqrt()).abs() < 1e-15);
        assert!(close(z * z.conj(), Complex64::from_re(5.0), 1e-15));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, c64(-1.0, 0.0));
    }

    #[test]
    fn exp_euler() {
        let z = Complex64::I * std::f64::consts::PI;
        assert!(close(z.exp(), c64(-1.0, 0.0), 1e-14));
        assert!(close(Complex64::cis(std::f64::consts::FRAC_PI_2), Complex64::I, 1e-15));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-4.0, 0.0), (3.0, 4.0), (-3.0, -4.0), (0.0, 2.0)] {
            let z = c64(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z, 1e-12), "sqrt({z:?})^2 = {:?}", r * r);
        }
        assert_eq!(Complex64::ZERO.sqrt(), Complex64::ZERO);
    }

    #[test]
    fn mixed_real_ops() {
        let z = c64(2.0, -1.0);
        assert_eq!(z * 2.0, c64(4.0, -2.0));
        assert_eq!(2.0 * z, c64(4.0, -2.0));
        assert_eq!(z + 1.0, c64(3.0, -1.0));
        assert_eq!(1.0 - z, c64(-1.0, 1.0));
        assert!(close(1.0 / z, z.inv(), 1e-15));
    }

    #[test]
    fn mul_add_matches_naive() {
        let a = c64(1.25, -0.5);
        let b = c64(-2.0, 3.0);
        let acc = c64(0.75, 0.125);
        assert!(close(a.mul_add(b, acc), a * b + acc, 1e-15));
    }

    #[test]
    fn sum_over_iterator() {
        let v = vec![c64(1.0, 1.0); 10];
        let s: Complex64 = v.iter().sum();
        assert_eq!(s, c64(10.0, 10.0));
    }
}
