//! # pwnum — numerical kernels for the PT-IM rt-TDDFT reproduction
//!
//! Self-contained complex arithmetic and dense linear algebra, written for
//! the sizes this code base actually uses:
//!
//! * [`complex`] — the `Complex64` scalar type.
//! * [`cvec`] — BLAS-1 kernels over coefficient/grid vectors (the inner
//!   loops of the Fock exchange operator and the mixers).
//! * [`cmat`] — dense row-major matrices for N×N subspace objects
//!   (σ, overlap matrices, rotations).
//! * [`gemm`] — op-aware matrix products with thread parallelism.
//! * [`bands`] — tall-and-skinny kernels over band-major wavefunction
//!   blocks (overlap `Φ^HΦ`, rotations `ΦQ`).
//! * [`eig`] — Hermitian eigendecomposition (cyclic complex Jacobi),
//!   used to diagonalize the occupation matrix σ (paper Eq. 11).
//! * [`chol`] — Cholesky factorization/solves (orthonormalization,
//!   projector inverses, ACE construction).
//! * [`lstsq`] — regularized least squares for Anderson mixing.
//! * [`parallel`] — scoped-thread `parallel for` helpers (the OpenMP
//!   analog of the paper's node-level parallelism).
//! * [`backend`] — the pluggable compute-backend layer: a [`Backend`]
//!   trait owning the hot primitives (GEMM, band ops, elementwise
//!   kernel products, batched grid transforms, buffer pool) with
//!   [`backend::Reference`] (the scalar/threaded kernels above) and
//!   [`backend::Blocked`] (cache-blocked, accelerator-style)
//!   implementations — the swap-in seam for SIMD/GPU ports.
//! * [`precision`] — the mixed-precision subsystem: the `Complex32`
//!   scalar with `CVec32`/`CMat32` storage, demote/promote conversion
//!   kernels, two-sum-compensated fp64 accumulation, and the
//!   [`PrecisionPolicy`] mapping pipeline stages to fp64/fp32 — the
//!   paper's fp32 exchange/FFT playbook for throughput hardware.
//! * [`tuning`] — the backend autotuner: per-(grid, bands, precision,
//!   backend) shape search over GEMM block widths, FFT slab sizes, and
//!   Fock tile sizes, persisted in a versioned JSON [`TuningTable`]
//!   with safe fallback to the built-in constants.
//!
//! No external math dependencies: every routine is implemented here and
//! validated by unit + property tests.

pub mod backend;
pub mod bands;
pub mod chol;
pub mod cmat;
pub mod complex;
pub mod cvec;
pub mod eig;
pub mod gemm;
pub mod lstsq;
pub mod parallel;
pub mod persist;
pub mod precision;
pub mod traced;
pub mod tuning;

pub use backend::{Backend, BackendHandle, PairTask};
pub use cmat::CMat;
pub use complex::{c64, Complex64};
pub use eig::{eigh, EigH};
pub use precision::{c32, CMat32, CVec32, Complex32, PrecisionPolicy, StagePrecision};
pub use tuning::{TuneKey, TunedShapes, TuningTable};
