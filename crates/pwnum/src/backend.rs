//! Pluggable compute backends for the performance-critical primitives.
//!
//! The paper's core engineering story is one rt-TDDFT code driving two
//! radically different platforms (ARM many-core and GPU) with the same
//! algorithm schedules. This module is the Rust analog of that seam: a
//! [`Backend`] trait owning every hot primitive — GEMM, the band-block
//! kernels (overlap / rotate / lincomb), elementwise kernel×field
//! products, and batched grid transforms with reusable scratch — so a
//! platform-specific implementation is *one type*, not a rewrite of the
//! physics layers.
//!
//! Two implementations ship here:
//!
//! * [`Reference`] — the original scalar/threaded kernels, unchanged,
//!   called through the trait. This is the "ARM-style" per-call path.
//! * [`Blocked`] — the accelerator-style path mirroring the paper's GPU
//!   strategy (Sec. III-B): a cache-blocked GEMM micro-kernel that reads
//!   each packed `A` panel row once per four output columns, band kernels
//!   with the same 4-wide register blocking, batched grid transforms that
//!   reuse one scratch arena per worker across the whole batch instead of
//!   allocating per transform, and a thread-safe [buffer pool]
//!   (`Backend::take_buffer`) that makes the Fock/ACE inner loops
//!   allocation-free in steady state.
//!
//! Both backends must agree to ≤ 1e-10 on every primitive; the property
//! suite `tests/backend_properties.rs` enforces this, and the FFT suite
//! in `pwfft` cross-checks batched transforms on the paper's
//! non-power-of-two 2/3/5-smooth grids.
//!
//! Higher layers hold a [`BackendHandle`] (`Arc<dyn Backend>`); call
//! sites without an explicit handle use [`default_backend`], selectable
//! at runtime via the `PWDFT_BACKEND` environment variable
//! (`reference` | `blocked`).

use crate::bands;
use crate::cmat::CMat;
use crate::complex::Complex64;
use crate::cvec;
use crate::gemm::{self, packed, packed_cols, Op};
use crate::parallel::{num_threads, par_chunks_mut, par_ranges};
use crate::precision::{self, CMat32, Complex32};
use crate::tuning::TunedShapes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// One grid-sized pass of a batched transform (e.g. a forward or inverse
/// 3-D FFT over one grid). `pwfft` implements this for its plans; keeping
/// the trait here (below the FFT crate in the DAG) lets [`Backend`] own
/// the *batching strategy* — slab decomposition, scratch reuse, thread
/// count — without depending on any particular transform.
pub trait GridTransform: Sync {
    /// Number of elements in one grid.
    fn grid_len(&self) -> usize;
    /// Scratch elements required by one [`GridTransform::run`] call.
    fn scratch_len(&self) -> usize;
    /// Transforms one grid in place. `scratch` has at least
    /// [`GridTransform::scratch_len`] elements and may hold garbage.
    fn run(&self, grid: &mut [Complex64], scratch: &mut [Complex64]);
}

/// Single-precision twin of [`GridTransform`]: one pass of a batched
/// fp32 transform (the fp32 screened-Poisson FFT of the mixed-precision
/// exchange path). Implemented by `pwfft`'s fp32 plans.
pub trait GridTransform32: Sync {
    /// Number of elements in one grid.
    fn grid_len(&self) -> usize;
    /// Scratch elements required by one [`GridTransform32::run`] call.
    fn scratch_len(&self) -> usize;
    /// Transforms one grid in place. `scratch` has at least
    /// [`GridTransform32::scratch_len`] elements and may hold garbage.
    fn run(&self, grid: &mut [Complex32], scratch: &mut [Complex32]);
}

/// One exchange pair solve of the fused pipeline: solve the pair
/// density `conj(phi_i) ⊙ psi_j` through the screened-Poisson transform
/// and scatter the result into up to two output bands.
///
/// The weights are the (real) occupation factors of the Fock scatter;
/// a weight of exactly `0.0` skips that scatter — how the scheduler
/// encodes occupation screening and the diagonal `i == j` case without
/// a second task shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairTask {
    /// Band index into `phi` (and the reverse-scatter target in `out`).
    pub i: usize,
    /// Band index into `psi` (and the forward-scatter target in `out`).
    pub j: usize,
    /// Forward-scatter weight: `out_j += w_fwd · W_ij ⊙ phi_i`
    /// (`0.0` = skip).
    pub w_fwd: f64,
    /// Reverse-scatter weight: `out_i += w_rev · conj(W_ij) ⊙ psi_j`
    /// (`0.0` = skip — always for the asymmetric scheduler and the
    /// diagonal of the symmetric one).
    pub w_rev: f64,
}

/// High-water-mark accounting of one buffer pool (per element type).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolTypeStats {
    /// Bytes currently checked out of the pool.
    pub outstanding_bytes: usize,
    /// Peak bytes simultaneously checked out since construction (or the
    /// last [`Backend::reset_pool_peak`]).
    pub peak_bytes: usize,
}

/// Pool accounting for both element types a backend pools.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// The `Complex64` pool.
    pub fp64: PoolTypeStats,
    /// The `Complex32` pool.
    pub fp32: PoolTypeStats,
}

/// The device abstraction: every performance-critical primitive of the
/// PT-IM hot paths, dispatchable per platform.
///
/// Implementations must be numerically equivalent to ≤ 1e-10 (they may
/// differ in summation order, never in math).
pub trait Backend: std::fmt::Debug + Send + Sync {
    /// Short human-readable backend name (used in benches and logs).
    fn name(&self) -> &'static str;

    /// `alpha * op(A) * op(B) + beta * C0` (see [`gemm::gemm`]).
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &self,
        alpha: Complex64,
        a: &CMat,
        op_a: Op,
        b: &CMat,
        op_b: Op,
        beta: Complex64,
        c0: Option<&CMat>,
    ) -> CMat;

    /// Band-block overlap `S[i][j] = scale * <a_i|b_j>`
    /// (see [`bands::overlap`]).
    fn overlap(&self, a: &[Complex64], b: &[Complex64], band_len: usize, scale: f64) -> CMat;

    /// Subspace rotation `out_j = Σ_i a_i q[i][j]` (see [`bands::rotate`]).
    fn rotate(&self, a: &[Complex64], q: &CMat, band_len: usize, out: &mut [Complex64]);

    /// Accumulating rotation `out_j += alpha Σ_i a_i q[i][j]`
    /// (see [`bands::rotate_acc`]).
    fn rotate_acc(
        &self,
        alpha: Complex64,
        a: &[Complex64],
        q: &CMat,
        band_len: usize,
        out: &mut [Complex64],
    );

    /// Band-wise linear combination `out = ca*a + cb*b`
    /// (see [`bands::lincomb`]).
    fn lincomb(
        &self,
        ca: Complex64,
        a: &[Complex64],
        cb: Complex64,
        b: &[Complex64],
        out: &mut [Complex64],
    );

    /// Elementwise real-kernel apply `field *= k`, cycling the kernel
    /// over consecutive `k.len()`-sized chunks of `field` (the
    /// `K(G)·f_G` multiply of the screened Poisson solve, applied to a
    /// whole FFT batch in one call). `field.len()` must be a multiple of
    /// `k.len()`.
    fn scale_by_real(&self, k: &[f64], field: &mut [Complex64]);

    /// Elementwise conjugated product `out = conj(a) ⊙ b` — the
    /// pair-density kernel of the Fock operator.
    fn hadamard_conj(&self, a: &[Complex64], b: &[Complex64], out: &mut [Complex64]);

    /// Weighted elementwise accumulate `acc += w · a ⊙ b`.
    fn hadamard_acc(&self, w: Complex64, a: &[Complex64], b: &[Complex64], acc: &mut [Complex64]);

    /// Weighted conjugated accumulate `acc += w · conj(a) ⊙ b` — the
    /// swapped-side scatter of the pair-symmetric Fock scheduler: a real
    /// screened kernel gives `W_ji = conj(W_ij)`, so one solved pair grid
    /// updates both target bands, the second through this primitive.
    fn hadamard_acc_conj(
        &self,
        w: Complex64,
        a: &[Complex64],
        b: &[Complex64],
        acc: &mut [Complex64],
    );

    /// Runs `pass` over `count` consecutive grids in `data` — the batched
    /// 3-D FFT entry point. The backend owns the batching strategy (how
    /// grids map to workers and how scratch is provisioned).
    fn transform_batch(&self, pass: &dyn GridTransform, data: &mut [Complex64], count: usize);

    /// The fused exchange pair-solve pipeline: for each [`PairTask`],
    /// form the pair density `conj(phi_i) ⊙ psi_j`, run it through
    /// `solve` (the whole screened-Poisson round trip as one
    /// [`GridTransform`]), and scatter the solved grid into `out` band
    /// `j` (weight `w_fwd`, kernel `W_ij`) and band `i` (weight `w_rev`,
    /// kernel `conj(W_ij)`) — all over two backend-owned scratch grids,
    /// so no per-pair buffer survives between stages.
    ///
    /// `phi`, `psi`, and `out` are band-major with `ng` elements per
    /// band (`psi` may alias `phi` by being the same slice). Tasks run
    /// strictly in order, and each scatter uses the same elementwise
    /// kernels as the staged scheduler — so for a `solve` that matches
    /// the staged transform value-for-value, the fused path is bitwise
    /// identical to the staged one on every backend.
    fn fused_pair_solve(
        &self,
        solve: &dyn GridTransform,
        phi: &[Complex64],
        psi: &[Complex64],
        ng: usize,
        tasks: &[PairTask],
        out: &mut [Complex64],
    ) {
        assert_eq!(solve.grid_len(), ng, "fused_pair_solve: solve grid length mismatch");
        assert!(phi.len().is_multiple_of(ng.max(1)), "fused_pair_solve: bad phi length");
        assert!(psi.len().is_multiple_of(ng.max(1)), "fused_pair_solve: bad psi length");
        assert!(out.len().is_multiple_of(ng.max(1)), "fused_pair_solve: bad out length");
        let mut pair = self.take_scratch(ng);
        let mut scratch = self.take_scratch(solve.scratch_len());
        for t in tasks {
            let phi_i = &phi[t.i * ng..(t.i + 1) * ng];
            let psi_j = &psi[t.j * ng..(t.j + 1) * ng];
            self.hadamard_conj(phi_i, psi_j, &mut pair);
            solve.run(&mut pair, &mut scratch);
            if t.w_fwd != 0.0 {
                let out_j = &mut out[t.j * ng..(t.j + 1) * ng];
                self.hadamard_acc(Complex64::from_re(t.w_fwd), &pair, phi_i, out_j);
            }
            if t.w_rev != 0.0 {
                let out_i = &mut out[t.i * ng..(t.i + 1) * ng];
                self.hadamard_acc_conj(Complex64::from_re(t.w_rev), &pair, psi_j, out_i);
            }
        }
        self.recycle_buffer(scratch);
        self.recycle_buffer(pair);
    }

    /// Whether this backend wants *fused* (cache-tiled) strided grid
    /// passes when a transform offers both styles. Accelerator-style
    /// backends return `true`: the tiled variant moves several strided
    /// lines per memory sweep, the analog of the coalesced multi-line
    /// passes of the paper's GPU FFT path. Per-line and tiled variants
    /// are required to be bitwise identical.
    fn fused_grid_passes(&self) -> bool {
        false
    }

    /// Hands out a zeroed buffer of `len` elements. [`Blocked`] serves
    /// these from a pool so hot loops are allocation-free in steady
    /// state; [`Reference`] allocates fresh.
    fn take_buffer(&self, len: usize) -> Vec<Complex64>;

    /// Hands out a buffer initialized to a copy of `src` — like
    /// [`Backend::take_buffer`] + `copy_from_slice`, but without the
    /// redundant zero fill when every element is overwritten anyway.
    fn take_buffer_copy(&self, src: &[Complex64]) -> Vec<Complex64>;

    /// Hands out a buffer of `len` elements with *unspecified contents*
    /// (recycled values or zeros) — for scratch whose every element is
    /// written before being read, avoiding the zero fill of
    /// [`Backend::take_buffer`].
    fn take_scratch(&self, len: usize) -> Vec<Complex64>;

    /// Returns a buffer obtained from [`Backend::take_buffer`] to the
    /// backend for reuse.
    fn recycle_buffer(&self, buf: Vec<Complex64>);

    /// High-water-mark accounting of the backend's buffer pools (zeros
    /// for backends that don't pool). Tests use this to *assert* the
    /// fused path's scratch reduction rather than claim it.
    fn pool_stats(&self) -> PoolStats {
        PoolStats::default()
    }

    /// Resets the peak-bytes high-water marks to the current outstanding
    /// level (no-op for backends that don't pool).
    fn reset_pool_peak(&self) {}

    // -----------------------------------------------------------------
    // fp32 / mixed-precision primitives (see [`crate::precision`]).
    //
    // Contract: `Reference` and `Blocked` must agree *exactly* (same
    // per-element arithmetic order, value-equal results) on every fp32
    // primitive — reduced precision may not compound with backend
    // summation-order differences.
    // -----------------------------------------------------------------

    /// fp32 GEMM `alpha * op(A) * op(B)` (no accumulate input: fp32
    /// products always land in fresh fp32 or promoted fp64 targets).
    fn gemm32(&self, alpha: Complex32, a: &CMat32, op_a: Op, b: &CMat32, op_b: Op) -> CMat32;

    /// fp32 band-block overlap `S[i][j] = scale * <a_i|b_j>`.
    fn overlap32(&self, a: &[Complex32], b: &[Complex32], band_len: usize, scale: f32) -> CMat32;

    /// fp32 accumulating rotation `out_j += alpha Σ_i a_i q[i][j]`.
    fn rotate_acc32(
        &self,
        alpha: Complex32,
        a: &[Complex32],
        q: &CMat32,
        band_len: usize,
        out: &mut [Complex32],
    );

    /// fp32 elementwise real-kernel apply `field *= k` (kernel cycled
    /// per grid) — the `K(G)·f_G` multiply of the fp32 Poisson solve.
    fn scale_by_real32(&self, k: &[f32], field: &mut [Complex32]);

    /// fp32 elementwise conjugated product `out = conj(a) ⊙ b` — the
    /// pair-density kernel of the fp32 Fock path.
    fn hadamard_conj32(&self, a: &[Complex32], b: &[Complex32], out: &mut [Complex32]);

    /// Weighted promote-accumulate `acc += w · a ⊙ b`: fp32 operands,
    /// fp64 products and accumulation, optionally two-sum compensated
    /// via `comp` (see [`precision::hadamard_acc_promote`]).
    fn hadamard_acc_promote(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    );

    /// Conjugated variant of [`Backend::hadamard_acc_promote`]:
    /// `acc += w · conj(a) ⊙ b` — the swapped-side scatter of the
    /// pair-symmetric scheduler in fp32.
    fn hadamard_acc_promote_conj(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    );

    /// Runs `pass` over `count` consecutive fp32 grids in `data` — the
    /// batched fp32 3-D FFT entry point.
    fn transform_batch32(&self, pass: &dyn GridTransform32, data: &mut [Complex32], count: usize);

    /// Mixed-precision twin of [`Backend::fused_pair_solve`]: the pair
    /// density is formed and solved in fp32 (operands already demoted by
    /// the caller), and both scatters promote to the fp64 accumulator —
    /// optionally two-sum compensated through `comp` (band-major,
    /// parallel to `out`). No intermediate `CVec32` buffer hits the pool
    /// between demote, FFT, kernel multiply, inverse FFT, and
    /// promote-scatter: one pooled fp32 pair grid and one pooled fp32
    /// scratch arena serve the whole task list.
    #[allow(clippy::too_many_arguments)]
    fn fused_pair_solve32(
        &self,
        solve: &dyn GridTransform32,
        phi: &[Complex32],
        psi: &[Complex32],
        ng: usize,
        tasks: &[PairTask],
        out: &mut [Complex64],
        mut comp: Option<&mut [Complex64]>,
    ) {
        assert_eq!(solve.grid_len(), ng, "fused_pair_solve32: solve grid length mismatch");
        assert!(phi.len().is_multiple_of(ng.max(1)), "fused_pair_solve32: bad phi length");
        assert!(psi.len().is_multiple_of(ng.max(1)), "fused_pair_solve32: bad psi length");
        assert!(out.len().is_multiple_of(ng.max(1)), "fused_pair_solve32: bad out length");
        if let Some(c) = comp.as_deref() {
            assert_eq!(c.len(), out.len(), "fused_pair_solve32: comp/out length mismatch");
        }
        let mut pair = self.take_scratch32(ng);
        let mut scratch = self.take_scratch32(solve.scratch_len());
        for t in tasks {
            let phi_i = &phi[t.i * ng..(t.i + 1) * ng];
            let psi_j = &psi[t.j * ng..(t.j + 1) * ng];
            self.hadamard_conj32(phi_i, psi_j, &mut pair);
            solve.run(&mut pair, &mut scratch);
            if t.w_fwd != 0.0 {
                let out_j = &mut out[t.j * ng..(t.j + 1) * ng];
                let comp_j = comp.as_deref_mut().map(|c| &mut c[t.j * ng..(t.j + 1) * ng]);
                self.hadamard_acc_promote(t.w_fwd, &pair, phi_i, out_j, comp_j);
            }
            if t.w_rev != 0.0 {
                let out_i = &mut out[t.i * ng..(t.i + 1) * ng];
                let comp_i = comp.as_deref_mut().map(|c| &mut c[t.i * ng..(t.i + 1) * ng]);
                self.hadamard_acc_promote_conj(t.w_rev, &pair, psi_j, out_i, comp_i);
            }
        }
        self.recycle_buffer32(scratch);
        self.recycle_buffer32(pair);
    }

    /// Hands out an fp32 buffer of `len` elements with *unspecified
    /// contents* — the fp32 twin of [`Backend::take_scratch`].
    fn take_scratch32(&self, len: usize) -> Vec<Complex32>;

    /// Returns an fp32 buffer to the backend for reuse.
    fn recycle_buffer32(&self, buf: Vec<Complex32>);
}

/// Shared, clonable handle to a backend.
pub type BackendHandle = Arc<dyn Backend>;

/// The process-wide default backend, selected once from the
/// `PWDFT_BACKEND` environment variable (`reference` or `blocked`;
/// default `blocked`). Layers that are not handed an explicit
/// [`BackendHandle`] route through this.
///
/// The handle is wrapped in the [`crate::traced::Traced`] observability
/// decorator, so every primitive carries a `pwobs` span — a single
/// relaxed atomic load per call while the recorder is disabled.
pub fn default_backend() -> &'static BackendHandle {
    static DEFAULT: OnceLock<BackendHandle> = OnceLock::new();
    DEFAULT.get_or_init(|| match std::env::var("PWDFT_BACKEND") {
        Ok(name) => by_name(&name).unwrap_or_else(|| {
            panic!("PWDFT_BACKEND={name:?} is not a known backend (reference|blocked)")
        }),
        Err(_) => crate::traced::Traced::wrap(Arc::new(Blocked::new())),
    })
}

/// Looks a backend up by name (`"reference"` or `"blocked"`), wrapped
/// in the observability decorator (see [`default_backend`]).
pub fn by_name(name: &str) -> Option<BackendHandle> {
    let inner: BackendHandle = match name {
        "reference" => Arc::new(Reference),
        "blocked" => Arc::new(Blocked::new()),
        _ => return None,
    };
    Some(crate::traced::Traced::wrap(inner))
}

// ---------------------------------------------------------------------
// Reference backend
// ---------------------------------------------------------------------

/// The original scalar/threaded kernels, called through the trait.
#[derive(Clone, Copy, Debug, Default)]
pub struct Reference;

impl Backend for Reference {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn gemm(
        &self,
        alpha: Complex64,
        a: &CMat,
        op_a: Op,
        b: &CMat,
        op_b: Op,
        beta: Complex64,
        c0: Option<&CMat>,
    ) -> CMat {
        gemm::gemm(alpha, a, op_a, b, op_b, beta, c0)
    }

    fn overlap(&self, a: &[Complex64], b: &[Complex64], band_len: usize, scale: f64) -> CMat {
        bands::overlap(a, b, band_len, scale)
    }

    fn rotate(&self, a: &[Complex64], q: &CMat, band_len: usize, out: &mut [Complex64]) {
        bands::rotate(a, q, band_len, out);
    }

    fn rotate_acc(
        &self,
        alpha: Complex64,
        a: &[Complex64],
        q: &CMat,
        band_len: usize,
        out: &mut [Complex64],
    ) {
        bands::rotate_acc(alpha, a, q, band_len, out);
    }

    fn lincomb(
        &self,
        ca: Complex64,
        a: &[Complex64],
        cb: Complex64,
        b: &[Complex64],
        out: &mut [Complex64],
    ) {
        bands::lincomb(ca, a, cb, b, out);
    }

    fn scale_by_real(&self, k: &[f64], field: &mut [Complex64]) {
        assert!(!k.is_empty(), "scale_by_real: empty kernel");
        assert!(field.len().is_multiple_of(k.len()), "scale_by_real: field not a multiple of kernel");
        for chunk in field.chunks_mut(k.len()) {
            for (f, &kv) in chunk.iter_mut().zip(k) {
                *f = f.scale(kv);
            }
        }
    }

    fn hadamard_conj(&self, a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
        cvec::hadamard_conj(a, b, out);
    }

    fn hadamard_acc(&self, w: Complex64, a: &[Complex64], b: &[Complex64], acc: &mut [Complex64]) {
        cvec::hadamard_acc(w, a, b, acc);
    }

    fn hadamard_acc_conj(
        &self,
        w: Complex64,
        a: &[Complex64],
        b: &[Complex64],
        acc: &mut [Complex64],
    ) {
        cvec::hadamard_acc_conj(w, a, b, acc);
    }

    fn transform_batch(&self, pass: &dyn GridTransform, data: &mut [Complex64], count: usize) {
        let n = pass.grid_len();
        assert_eq!(data.len(), count * n, "transform_batch length mismatch");
        let scratch_len = pass.scratch_len();
        // Per-call scratch allocation: the pre-backend semantics of one
        // independent transform at a time, thread-parallel over grids.
        par_chunks_mut(data, n, |_, grid| {
            let mut scratch = vec![Complex64::ZERO; scratch_len];
            pass.run(grid, &mut scratch);
        });
    }

    fn take_buffer(&self, len: usize) -> Vec<Complex64> {
        vec![Complex64::ZERO; len]
    }

    fn take_buffer_copy(&self, src: &[Complex64]) -> Vec<Complex64> {
        src.to_vec()
    }

    fn take_scratch(&self, len: usize) -> Vec<Complex64> {
        vec![Complex64::ZERO; len]
    }

    fn recycle_buffer(&self, _buf: Vec<Complex64>) {}

    fn gemm32(&self, alpha: Complex32, a: &CMat32, op_a: Op, b: &CMat32, op_b: Op) -> CMat32 {
        let ap = packed32(a, op_a);
        let bp = packed32_cols(b, op_b);
        let (m, k) = (ap.rows(), ap.cols());
        let n = bp.rows();
        assert_eq!(k, bp.cols(), "gemm32 inner dimension mismatch");
        let mut c = CMat32::zeros(m, n);
        for i in 0..m {
            let arow = ap.row(i);
            for j in 0..n {
                let brow = bp.row(j);
                let mut s = Complex32::ZERO;
                for (l, &av) in arow.iter().enumerate() {
                    s = av.mul_add(brow[l], s);
                }
                c[(i, j)] = s * alpha;
            }
        }
        c
    }

    fn overlap32(&self, a: &[Complex32], b: &[Complex32], band_len: usize, scale: f32) -> CMat32 {
        let na = n_bands32(a, band_len);
        let nb = n_bands32(b, band_len);
        let mut s = CMat32::zeros(na, nb);
        for i in 0..na {
            let ai = &a[i * band_len..(i + 1) * band_len];
            for j in 0..nb {
                let bj = &b[j * band_len..(j + 1) * band_len];
                let mut acc = Complex32::ZERO;
                for (x, y) in ai.iter().zip(bj) {
                    acc = x.conj().mul_add(*y, acc);
                }
                s[(i, j)] = acc.scale(scale);
            }
        }
        s
    }

    fn rotate_acc32(
        &self,
        alpha: Complex32,
        a: &[Complex32],
        q: &CMat32,
        band_len: usize,
        out: &mut [Complex32],
    ) {
        let na = n_bands32(a, band_len);
        assert_eq!(q.rows(), na, "rotate_acc32: Q row count must match band count");
        assert_eq!(out.len(), band_len * q.cols(), "rotate_acc32: bad output size");
        for (j, oj) in out.chunks_mut(band_len).enumerate() {
            for i in 0..na {
                let w = alpha * q[(i, j)];
                if w == Complex32::ZERO {
                    continue;
                }
                let ai = &a[i * band_len..(i + 1) * band_len];
                for (o, &av) in oj.iter_mut().zip(ai) {
                    *o = av.mul_add(w, *o);
                }
            }
        }
    }

    fn scale_by_real32(&self, k: &[f32], field: &mut [Complex32]) {
        precision::scale_by_real32(k, field);
    }

    fn hadamard_conj32(&self, a: &[Complex32], b: &[Complex32], out: &mut [Complex32]) {
        precision::hadamard_conj32(a, b, out);
    }

    fn hadamard_acc_promote(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        precision::hadamard_acc_promote(w, a, b, acc, comp);
    }

    fn hadamard_acc_promote_conj(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        precision::hadamard_acc_promote_conj(w, a, b, acc, comp);
    }

    fn transform_batch32(&self, pass: &dyn GridTransform32, data: &mut [Complex32], count: usize) {
        let n = pass.grid_len();
        assert_eq!(data.len(), count * n, "transform_batch32 length mismatch");
        let scratch_len = pass.scratch_len();
        // Per-call scratch allocation, thread-parallel over grids — the
        // fp32 twin of the fp64 reference batching.
        par_chunks_mut(data, n, |_, grid| {
            let mut scratch = vec![Complex32::ZERO; scratch_len];
            pass.run(grid, &mut scratch);
        });
    }

    fn take_scratch32(&self, len: usize) -> Vec<Complex32> {
        vec![Complex32::ZERO; len]
    }

    fn recycle_buffer32(&self, _buf: Vec<Complex32>) {}
}

// ---------------------------------------------------------------------
// Blocked backend
// ---------------------------------------------------------------------

/// Bounded thread-safe free list of scratch buffers, generic over the
/// element type so the fp64 and fp32 pipelines each pool their own
/// arenas.
///
/// `take` is best-fit: it hands out the *smallest* pooled buffer that
/// satisfies the request, so a batch-sized arena is not wasted on a
/// line-sized ask; `put` drops buffers beyond the count and byte caps
/// rather than growing without bound.
#[derive(Debug)]
struct BufferPool<T> {
    slots: Mutex<Vec<Vec<T>>>,
    /// Bytes currently checked out (taken but not yet `put` back).
    outstanding_bytes: AtomicUsize,
    /// Peak of `outstanding_bytes` since construction / last reset —
    /// the high-water mark the fused-path scratch tests assert on.
    peak_bytes: AtomicUsize,
}

impl<T> Default for BufferPool<T> {
    fn default() -> Self {
        BufferPool {
            slots: Mutex::new(Vec::new()),
            outstanding_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
        }
    }
}

/// Maximum number of buffers the pool retains.
const POOL_CAP: usize = 64;

/// Maximum total bytes the pool retains (1 GiB): one production-sized
/// Fock pair arena is meant to stay resident, but the pool must not
/// accumulate several of them for the process lifetime.
const POOL_CAP_BYTES: usize = 1 << 30;

impl<T: Copy + Default> BufferPool<T> {
    fn take(&self, len: usize) -> Vec<T> {
        let mut buf = self.take_empty(len);
        buf.resize(len, T::default());
        buf
    }

    /// Like [`Self::take`] but the contents are unspecified (recycled
    /// values or zeros) — for scratch whose every element is written
    /// before being read, avoiding the O(len) zero fill per checkout.
    fn take_garbage(&self, len: usize) -> Vec<T> {
        let mut buf = self.lookup(len).unwrap_or_else(|| Vec::with_capacity(len));
        self.note_checkout(&buf);
        if buf.len() < len {
            // resize only writes the tail beyond the current length.
            buf.resize(len, T::default());
        } else {
            buf.truncate(len);
        }
        buf
    }

    /// Best-fit lookup returning a *cleared* buffer with at least `len`
    /// capacity (no fill — for callers that overwrite every element).
    fn take_empty(&self, len: usize) -> Vec<T> {
        let mut buf = self.lookup(len).unwrap_or_else(|| Vec::with_capacity(len));
        self.note_checkout(&buf);
        buf.clear();
        buf
    }

    /// Charges a freshly checked-out buffer against the outstanding and
    /// peak counters.
    fn note_checkout(&self, buf: &Vec<T>) {
        let bytes = buf.capacity() * std::mem::size_of::<T>();
        let now = self.outstanding_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// Current accounting snapshot (outstanding is approximate only in
    /// the sense that `put` of a buffer the pool never handed out — a
    /// caller-grown one — saturates at zero instead of underflowing).
    fn stats(&self) -> PoolTypeStats {
        PoolTypeStats {
            outstanding_bytes: self.outstanding_bytes.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets the high-water mark to the current outstanding level.
    fn reset_peak(&self) {
        self.peak_bytes.store(self.outstanding_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Best-fit pool lookup, bounded to ≤ 2×`len` capacity so a tiny
    /// request can never check out (and hold) a batch-sized arena.
    fn lookup(&self, len: usize) -> Option<Vec<T>> {
        let mut slots = self.slots.lock();
        let best = slots
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len && b.capacity() <= 2 * len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        best.map(|i| slots.swap_remove(i))
    }

    fn put(&self, buf: Vec<T>) {
        if buf.capacity() == 0 {
            return;
        }
        // The buffer is no longer outstanding whether or not the caps
        // let us retain it. Saturating: a caller may return a buffer
        // that grew (or was allocated) outside the pool.
        let bytes = buf.capacity() * std::mem::size_of::<T>();
        let _ = self
            .outstanding_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(bytes)));
        let mut slots = self.slots.lock();
        let pooled_bytes: usize =
            slots.iter().map(|b| b.capacity() * std::mem::size_of::<T>()).sum();
        let incoming = buf.capacity() * std::mem::size_of::<T>();
        if slots.len() < POOL_CAP && pooled_bytes + incoming <= POOL_CAP_BYTES {
            slots.push(buf);
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.slots.lock().len()
    }
}

/// Cache-blocked, accelerator-style backend (the paper's GPU strategy
/// transplanted to CPU threads): register blocking in GEMM and the
/// band kernels (width autotunable, default 4), slab-decomposed batched
/// transforms with one scratch arena per worker, and pooled buffers for
/// allocation-free hot loops.
#[derive(Debug)]
pub struct Blocked {
    pool: BufferPool<Complex64>,
    pool32: BufferPool<Complex32>,
    shapes: TunedShapes,
}

impl Default for Blocked {
    fn default() -> Self {
        Blocked::new()
    }
}

/// Default column-block width of the register micro-kernel: each packed
/// `A` row segment is read once per `NB` output columns. The autotuner
/// may widen/narrow this per backend (see [`TunedShapes::gemm_block`]);
/// widths only regroup output columns — each element's per-`l`
/// accumulation order is fixed — so every width is value-identical.
const NB: usize = 4;

/// Largest register-block width the micro-kernels dispatch on.
const MAX_NB: usize = 8;

/// Grid-point threshold below which a batched transform runs inline
/// (spawn overhead would dominate tiny batches).
const MIN_BATCH_PARALLEL: usize = 1 << 14;

impl Blocked {
    /// Creates the backend with an empty buffer pool and the shapes the
    /// process-wide tuning table holds for `"blocked"` (the built-in
    /// constants when no table is loaded).
    pub fn new() -> Self {
        Blocked::with_shapes(crate::tuning::backend_defaults("blocked"))
    }

    /// Creates the backend with explicit tuned shapes (the autotuner's
    /// measurement constructor). Out-of-range widths are clamped to the
    /// dispatchable `1..=MAX_NB` range.
    pub fn with_shapes(shapes: TunedShapes) -> Self {
        let shapes =
            TunedShapes { gemm_block: shapes.gemm_block.clamp(1, MAX_NB), ..shapes };
        Blocked { pool: BufferPool::default(), pool32: BufferPool::default(), shapes }
    }

    /// The shapes this backend instance runs with.
    pub fn shapes(&self) -> TunedShapes {
        self.shapes
    }

    /// Number of buffers currently pooled (test/diagnostic hook).
    #[cfg(test)]
    fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// Accumulates `acc[j] += Σ_l a[l] * rows[j][l]` for up to [`MAX_NB`]
/// packed rows sharing one pass over `a` — the register micro-kernel.
/// Widths 2/4/8 get dedicated register-resident arms (the autotuner's
/// `gemm_block` candidates); every arm runs each element's per-`l` sum
/// in the same order, so all widths produce identical values.
#[inline]
fn dot_block(a: &[Complex64], rows: &[&[Complex64]], acc: &mut [Complex64]) {
    match rows.len() {
        2 => {
            let (r0, r1) = (rows[0], rows[1]);
            let (mut s0, mut s1) = (Complex64::ZERO, Complex64::ZERO);
            for (l, &av) in a.iter().enumerate() {
                s0 = av.mul_add(r0[l], s0);
                s1 = av.mul_add(r1[l], s1);
            }
            acc[0] += s0;
            acc[1] += s1;
        }
        8 => {
            let mut s = [Complex64::ZERO; 8];
            for (l, &av) in a.iter().enumerate() {
                for (t, rj) in rows.iter().enumerate() {
                    s[t] = av.mul_add(rj[l], s[t]);
                }
            }
            for (t, sv) in s.iter().enumerate() {
                acc[t] += *sv;
            }
        }
        4 => {
            let (r0, r1, r2, r3) = (rows[0], rows[1], rows[2], rows[3]);
            let (mut s0, mut s1, mut s2, mut s3) =
                (Complex64::ZERO, Complex64::ZERO, Complex64::ZERO, Complex64::ZERO);
            for (l, &av) in a.iter().enumerate() {
                s0 = av.mul_add(r0[l], s0);
                s1 = av.mul_add(r1[l], s1);
                s2 = av.mul_add(r2[l], s2);
                s3 = av.mul_add(r3[l], s3);
            }
            acc[0] += s0;
            acc[1] += s1;
            acc[2] += s2;
            acc[3] += s3;
        }
        m => {
            for (j, rj) in rows.iter().enumerate().take(m) {
                let mut s = Complex64::ZERO;
                for (l, &av) in a.iter().enumerate() {
                    s = av.mul_add(rj[l], s);
                }
                acc[j] += s;
            }
        }
    }
}

/// Conjugating variant of [`dot_block`]: `acc[j] += Σ_l conj(a[l]) * rows[j][l]`.
#[inline]
fn dotc_block(a: &[Complex64], rows: &[&[Complex64]], acc: &mut [Complex64]) {
    match rows.len() {
        2 => {
            let (r0, r1) = (rows[0], rows[1]);
            let (mut s0, mut s1) = (Complex64::ZERO, Complex64::ZERO);
            for (l, av) in a.iter().enumerate() {
                let ac = av.conj();
                s0 = ac.mul_add(r0[l], s0);
                s1 = ac.mul_add(r1[l], s1);
            }
            acc[0] += s0;
            acc[1] += s1;
        }
        8 => {
            let mut s = [Complex64::ZERO; 8];
            for (l, av) in a.iter().enumerate() {
                let ac = av.conj();
                for (t, rj) in rows.iter().enumerate() {
                    s[t] = ac.mul_add(rj[l], s[t]);
                }
            }
            for (t, sv) in s.iter().enumerate() {
                acc[t] += *sv;
            }
        }
        4 => {
            let (r0, r1, r2, r3) = (rows[0], rows[1], rows[2], rows[3]);
            let (mut s0, mut s1, mut s2, mut s3) =
                (Complex64::ZERO, Complex64::ZERO, Complex64::ZERO, Complex64::ZERO);
            for (l, av) in a.iter().enumerate() {
                let ac = av.conj();
                s0 = ac.mul_add(r0[l], s0);
                s1 = ac.mul_add(r1[l], s1);
                s2 = ac.mul_add(r2[l], s2);
                s3 = ac.mul_add(r3[l], s3);
            }
            acc[0] += s0;
            acc[1] += s1;
            acc[2] += s2;
            acc[3] += s3;
        }
        m => {
            for (j, rj) in rows.iter().enumerate().take(m) {
                let mut s = Complex64::ZERO;
                for (l, av) in a.iter().enumerate() {
                    s = av.conj().mul_add(rj[l], s);
                }
                acc[j] += s;
            }
        }
    }
}

// ---------------------------------------------------------------------
// fp32 shared helpers
// ---------------------------------------------------------------------

/// Materializes `op(A)` row-major in fp32, Cow-borrowing the no-op case
/// (packing is exact: transposes and conjugation introduce no rounding,
/// so both backends can share it while staying value-identical).
fn packed32(a: &CMat32, op: Op) -> std::borrow::Cow<'_, CMat32> {
    use std::borrow::Cow;
    match op {
        Op::None => Cow::Borrowed(a),
        Op::Trans => Cow::Owned(CMat32::from_fn(a.cols(), a.rows(), |i, j| a[(j, i)])),
        Op::ConjTrans => {
            Cow::Owned(CMat32::from_fn(a.cols(), a.rows(), |i, j| a[(j, i)].conj()))
        }
    }
}

/// Materializes `op(B)` with row `r` holding *column* `r` of `op(B)` —
/// the contiguous-panel layout the fp32 micro-kernel streams. `Trans`
/// is already in that layout and is Cow-borrowed.
fn packed32_cols(b: &CMat32, op: Op) -> std::borrow::Cow<'_, CMat32> {
    use std::borrow::Cow;
    match op {
        Op::None => Cow::Owned(CMat32::from_fn(b.cols(), b.rows(), |j, l| b[(l, j)])),
        Op::Trans => Cow::Borrowed(b),
        Op::ConjTrans => {
            Cow::Owned(CMat32::from_fn(b.rows(), b.cols(), |j, l| b[(j, l)].conj()))
        }
    }
}

/// fp32 twin of [`dot_block`]: `acc[j] += Σ_l a[l] * rows[j][l]`, each
/// output element accumulated sequentially over `l` — the same
/// per-element order as a naive loop, so blocking never changes values.
#[inline]
fn dot_block32(a: &[Complex32], rows: &[&[Complex32]], acc: &mut [Complex32]) {
    match rows.len() {
        2 => {
            let (r0, r1) = (rows[0], rows[1]);
            let (mut s0, mut s1) = (Complex32::ZERO, Complex32::ZERO);
            for (l, &av) in a.iter().enumerate() {
                s0 = av.mul_add(r0[l], s0);
                s1 = av.mul_add(r1[l], s1);
            }
            acc[0] += s0;
            acc[1] += s1;
        }
        8 => {
            let mut s = [Complex32::ZERO; 8];
            for (l, &av) in a.iter().enumerate() {
                for (t, rj) in rows.iter().enumerate() {
                    s[t] = av.mul_add(rj[l], s[t]);
                }
            }
            for (t, sv) in s.iter().enumerate() {
                acc[t] += *sv;
            }
        }
        4 => {
            let (r0, r1, r2, r3) = (rows[0], rows[1], rows[2], rows[3]);
            let (mut s0, mut s1, mut s2, mut s3) =
                (Complex32::ZERO, Complex32::ZERO, Complex32::ZERO, Complex32::ZERO);
            for (l, &av) in a.iter().enumerate() {
                s0 = av.mul_add(r0[l], s0);
                s1 = av.mul_add(r1[l], s1);
                s2 = av.mul_add(r2[l], s2);
                s3 = av.mul_add(r3[l], s3);
            }
            acc[0] += s0;
            acc[1] += s1;
            acc[2] += s2;
            acc[3] += s3;
        }
        m => {
            for (j, rj) in rows.iter().enumerate().take(m) {
                let mut s = Complex32::ZERO;
                for (l, &av) in a.iter().enumerate() {
                    s = av.mul_add(rj[l], s);
                }
                acc[j] += s;
            }
        }
    }
}

/// Conjugating fp32 variant: `acc[j] += Σ_l conj(a[l]) * rows[j][l]`.
#[inline]
fn dotc_block32(a: &[Complex32], rows: &[&[Complex32]], acc: &mut [Complex32]) {
    match rows.len() {
        2 => {
            let (r0, r1) = (rows[0], rows[1]);
            let (mut s0, mut s1) = (Complex32::ZERO, Complex32::ZERO);
            for (l, av) in a.iter().enumerate() {
                let ac = av.conj();
                s0 = ac.mul_add(r0[l], s0);
                s1 = ac.mul_add(r1[l], s1);
            }
            acc[0] += s0;
            acc[1] += s1;
        }
        8 => {
            let mut s = [Complex32::ZERO; 8];
            for (l, av) in a.iter().enumerate() {
                let ac = av.conj();
                for (t, rj) in rows.iter().enumerate() {
                    s[t] = ac.mul_add(rj[l], s[t]);
                }
            }
            for (t, sv) in s.iter().enumerate() {
                acc[t] += *sv;
            }
        }
        4 => {
            let (r0, r1, r2, r3) = (rows[0], rows[1], rows[2], rows[3]);
            let (mut s0, mut s1, mut s2, mut s3) =
                (Complex32::ZERO, Complex32::ZERO, Complex32::ZERO, Complex32::ZERO);
            for (l, av) in a.iter().enumerate() {
                let ac = av.conj();
                s0 = ac.mul_add(r0[l], s0);
                s1 = ac.mul_add(r1[l], s1);
                s2 = ac.mul_add(r2[l], s2);
                s3 = ac.mul_add(r3[l], s3);
            }
            acc[0] += s0;
            acc[1] += s1;
            acc[2] += s2;
            acc[3] += s3;
        }
        m => {
            for (j, rj) in rows.iter().enumerate().take(m) {
                let mut s = Complex32::ZERO;
                for (l, av) in a.iter().enumerate() {
                    s = av.conj().mul_add(rj[l], s);
                }
                acc[j] += s;
            }
        }
    }
}

/// Number of fp32 bands in a band-major block.
#[inline]
fn n_bands32(a: &[Complex32], band_len: usize) -> usize {
    assert!(band_len > 0, "band length must be positive");
    assert!(a.len().is_multiple_of(band_len), "block not a multiple of band length");
    a.len() / band_len
}

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gemm(
        &self,
        alpha: Complex64,
        a: &CMat,
        op_a: Op,
        b: &CMat,
        op_b: Op,
        beta: Complex64,
        c0: Option<&CMat>,
    ) -> CMat {
        let ap = packed(a, op_a);
        let bp = packed_cols(b, op_b);
        let (m, k) = (ap.rows(), ap.cols());
        let n = bp.rows();
        assert_eq!(k, bp.cols(), "gemm inner dimension mismatch");
        if let Some(c0) = c0 {
            assert_eq!((c0.rows(), c0.cols()), (m, n), "gemm C dimension mismatch");
        }
        let mut c = CMat::zeros(m, n);
        {
            let rows: Vec<Mutex<&mut [Complex64]>> =
                c.as_mut_slice().chunks_mut(n.max(1)).map(Mutex::new).collect();
            let ap = &*ap;
            let bp = &*bp;
            let nb = self.shapes.gemm_block;
            par_ranges(m, |lo, hi| {
                let mut blk: [&[Complex64]; MAX_NB] = [&[]; MAX_NB];
                for (i, crow_m) in rows.iter().enumerate().take(hi).skip(lo) {
                    let arow = ap.row(i);
                    let mut crow = crow_m.lock();
                    let mut jb = 0;
                    while jb < n {
                        let jn = (jb + nb).min(n);
                        for (s, j) in (jb..jn).enumerate() {
                            blk[s] = bp.row(j);
                        }
                        dot_block(arow, &blk[..jn - jb], &mut crow[jb..jn]);
                        jb = jn;
                    }
                    for (j, cv) in crow.iter_mut().enumerate() {
                        let mut v = *cv * alpha;
                        if let Some(c0) = c0 {
                            v += beta * c0[(i, j)];
                        }
                        *cv = v;
                    }
                }
            });
        }
        c
    }

    fn overlap(&self, a: &[Complex64], b: &[Complex64], band_len: usize, scale: f64) -> CMat {
        let na = bands::n_bands(a, band_len);
        let nb = bands::n_bands(b, band_len);
        let mut s = CMat::zeros(na, nb);
        {
            let rows: Vec<Mutex<&mut [Complex64]>> =
                s.as_mut_slice().chunks_mut(nb.max(1)).map(Mutex::new).collect();
            let width = self.shapes.gemm_block;
            par_ranges(na, |lo, hi| {
                let mut blk: [&[Complex64]; MAX_NB] = [&[]; MAX_NB];
                for (i, row_m) in rows.iter().enumerate().take(hi).skip(lo) {
                    let ai = bands::band(a, band_len, i);
                    let mut row = row_m.lock();
                    let mut jb = 0;
                    while jb < nb {
                        let jn = (jb + width).min(nb);
                        for (s, j) in (jb..jn).enumerate() {
                            blk[s] = bands::band(b, band_len, j);
                        }
                        dotc_block(ai, &blk[..jn - jb], &mut row[jb..jn]);
                        jb = jn;
                    }
                    for v in row.iter_mut() {
                        *v = v.scale(scale);
                    }
                }
            });
        }
        s
    }

    fn rotate(&self, a: &[Complex64], q: &CMat, band_len: usize, out: &mut [Complex64]) {
        let na = bands::n_bands(a, band_len);
        assert_eq!(q.rows(), na, "rotate: Q row count must match band count");
        assert_eq!(out.len(), band_len * q.cols(), "rotate: bad output size");
        cvec::zero_fill(out);
        self.rotate_acc(Complex64::ONE, a, q, band_len, out);
    }

    fn rotate_acc(
        &self,
        alpha: Complex64,
        a: &[Complex64],
        q: &CMat,
        band_len: usize,
        out: &mut [Complex64],
    ) {
        let na = bands::n_bands(a, band_len);
        assert_eq!(q.rows(), na, "rotate_acc: Q row count must match band count");
        assert_eq!(out.len(), band_len * q.cols(), "rotate_acc: bad output size");
        // Process output bands in blocks of NB: one pass over each source
        // band updates NB outputs, dividing source-read traffic by NB.
        par_chunks_mut(out, band_len * NB, |blk_idx, oblk| {
            let j0 = blk_idx * NB;
            let width = oblk.len() / band_len;
            for i in 0..na {
                let ai = bands::band(a, band_len, i);
                let mut w = [Complex64::ZERO; NB];
                let mut any = false;
                for s in 0..width {
                    w[s] = alpha * q[(i, j0 + s)];
                    any |= w[s] != Complex64::ZERO;
                }
                if !any {
                    continue;
                }
                match width {
                    4 => {
                        let (o0, rest) = oblk.split_at_mut(band_len);
                        let (o1, rest) = rest.split_at_mut(band_len);
                        let (o2, o3) = rest.split_at_mut(band_len);
                        let (w0, w1, w2, w3) = (w[0], w[1], w[2], w[3]);
                        for (l, &av) in ai.iter().enumerate() {
                            o0[l] = av.mul_add(w0, o0[l]);
                            o1[l] = av.mul_add(w1, o1[l]);
                            o2[l] = av.mul_add(w2, o2[l]);
                            o3[l] = av.mul_add(w3, o3[l]);
                        }
                    }
                    _ => {
                        for (s, oj) in oblk.chunks_mut(band_len).enumerate() {
                            if w[s] != Complex64::ZERO {
                                cvec::axpy(w[s], ai, oj);
                            }
                        }
                    }
                }
            }
        });
    }

    fn lincomb(
        &self,
        ca: Complex64,
        a: &[Complex64],
        cb: Complex64,
        b: &[Complex64],
        out: &mut [Complex64],
    ) {
        // Memory-bound: the reference loop is already optimal.
        bands::lincomb(ca, a, cb, b, out);
    }

    fn scale_by_real(&self, k: &[f64], field: &mut [Complex64]) {
        assert!(!k.is_empty(), "scale_by_real: empty kernel");
        assert!(field.len().is_multiple_of(k.len()), "scale_by_real: field not a multiple of kernel");
        // One fused parallel pass over the whole batch.
        par_chunks_mut(field, k.len(), |_, chunk| {
            for (f, &kv) in chunk.iter_mut().zip(k) {
                *f = f.scale(kv);
            }
        });
    }

    fn hadamard_conj(&self, a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
        cvec::hadamard_conj(a, b, out);
    }

    fn hadamard_acc(&self, w: Complex64, a: &[Complex64], b: &[Complex64], acc: &mut [Complex64]) {
        cvec::hadamard_acc(w, a, b, acc);
    }

    fn hadamard_acc_conj(
        &self,
        w: Complex64,
        a: &[Complex64],
        b: &[Complex64],
        acc: &mut [Complex64],
    ) {
        assert_eq!(a.len(), b.len(), "hadamard_acc_conj length mismatch");
        assert_eq!(a.len(), acc.len(), "hadamard_acc_conj output length mismatch");
        // 4-wide unrolled body (same per-element math as the reference
        // kernel, so both backends are bitwise identical): four
        // independent accumulator chains per sweep, mirroring the
        // register blocking of `dot_block`.
        let n = a.len();
        let head = n - n % NB;
        let mut l = 0;
        while l < head {
            let (a0, a1, a2, a3) = (a[l], a[l + 1], a[l + 2], a[l + 3]);
            let (b0, b1, b2, b3) = (b[l], b[l + 1], b[l + 2], b[l + 3]);
            acc[l] = (a0.conj() * b0).mul_add(w, acc[l]);
            acc[l + 1] = (a1.conj() * b1).mul_add(w, acc[l + 1]);
            acc[l + 2] = (a2.conj() * b2).mul_add(w, acc[l + 2]);
            acc[l + 3] = (a3.conj() * b3).mul_add(w, acc[l + 3]);
            l += NB;
        }
        for i in head..n {
            acc[i] = (a[i].conj() * b[i]).mul_add(w, acc[i]);
        }
    }

    fn transform_batch(&self, pass: &dyn GridTransform, data: &mut [Complex64], count: usize) {
        let n = pass.grid_len();
        assert_eq!(data.len(), count * n, "transform_batch length mismatch");
        if count == 0 {
            return;
        }
        let scratch_len = pass.scratch_len();
        let workers = if data.len() < MIN_BATCH_PARALLEL { 1 } else { num_threads(count) };
        if workers == 1 {
            // One arena reused across the whole batch (garbage-tolerant:
            // GridTransform::run never reads scratch before writing it).
            let mut scratch = self.pool.take_garbage(scratch_len);
            for grid in data.chunks_mut(n) {
                pass.run(grid, &mut scratch);
            }
            self.pool.put(scratch);
            return;
        }
        // Slab decomposition: each worker claims one contiguous run of
        // grids and reuses a single pooled arena across all of them —
        // the "multi-batch" strategy of the paper's cuFFT path. The
        // tuned `fft_slab` caps grids per slab (finer slabs balance
        // load at the cost of more scratch checkouts), bounded below so
        // the spawn count stays O(workers); 0 = one slab per worker.
        let mut per_worker = count.div_ceil(workers);
        if self.shapes.fft_slab > 0 {
            per_worker =
                per_worker.min(self.shapes.fft_slab).max(count.div_ceil(workers * 4)).max(1);
        }
        std::thread::scope(|s| {
            for slab in data.chunks_mut(per_worker * n) {
                s.spawn(|| {
                    let mut scratch = self.pool.take_garbage(scratch_len);
                    for grid in slab.chunks_mut(n) {
                        pass.run(grid, &mut scratch);
                    }
                    self.pool.put(scratch);
                });
            }
        });
    }

    fn fused_grid_passes(&self) -> bool {
        true
    }

    fn take_buffer(&self, len: usize) -> Vec<Complex64> {
        self.pool.take(len)
    }

    fn take_buffer_copy(&self, src: &[Complex64]) -> Vec<Complex64> {
        let mut buf = self.pool.take_empty(src.len());
        buf.extend_from_slice(src);
        buf
    }

    fn take_scratch(&self, len: usize) -> Vec<Complex64> {
        self.pool.take_garbage(len)
    }

    fn recycle_buffer(&self, buf: Vec<Complex64>) {
        self.pool.put(buf);
    }

    fn pool_stats(&self) -> PoolStats {
        PoolStats { fp64: self.pool.stats(), fp32: self.pool32.stats() }
    }

    fn reset_pool_peak(&self) {
        self.pool.reset_peak();
        self.pool32.reset_peak();
    }

    fn gemm32(&self, alpha: Complex32, a: &CMat32, op_a: Op, b: &CMat32, op_b: Op) -> CMat32 {
        let ap = packed32(a, op_a);
        let bp = packed32_cols(b, op_b);
        let (m, k) = (ap.rows(), ap.cols());
        let n = bp.rows();
        assert_eq!(k, bp.cols(), "gemm32 inner dimension mismatch");
        let mut c = CMat32::zeros(m, n);
        // Register blocking over output columns (tuned width); each
        // element's sum runs in the same l order as the reference loop,
        // so both backends produce identical values.
        let nb = self.shapes.gemm_block;
        let mut blk: [&[Complex32]; MAX_NB] = [&[]; MAX_NB];
        let mut crow = vec![Complex32::ZERO; n];
        for i in 0..m {
            let arow = ap.row(i);
            crow.fill(Complex32::ZERO);
            let mut jb = 0;
            while jb < n {
                let jn = (jb + nb).min(n);
                for (s, j) in (jb..jn).enumerate() {
                    blk[s] = bp.row(j);
                }
                dot_block32(arow, &blk[..jn - jb], &mut crow[jb..jn]);
                jb = jn;
            }
            for (j, cv) in crow.iter().enumerate() {
                c[(i, j)] = *cv * alpha;
            }
        }
        c
    }

    fn overlap32(&self, a: &[Complex32], b: &[Complex32], band_len: usize, scale: f32) -> CMat32 {
        let na = n_bands32(a, band_len);
        let nb = n_bands32(b, band_len);
        let mut s = CMat32::zeros(na, nb);
        // Row-parallel like the fp64 twin: rows are independent and each
        // element's per-l summation order is unchanged, so the result
        // stays exactly equal to the reference loop.
        {
            let rows: Vec<Mutex<&mut [Complex32]>> =
                s.as_mut_slice().chunks_mut(nb.max(1)).map(Mutex::new).collect();
            let width = self.shapes.gemm_block;
            par_ranges(na, |lo, hi| {
                let mut blk: [&[Complex32]; MAX_NB] = [&[]; MAX_NB];
                for (i, row_m) in rows.iter().enumerate().take(hi).skip(lo) {
                    let ai = &a[i * band_len..(i + 1) * band_len];
                    let mut row = row_m.lock();
                    let mut jb = 0;
                    while jb < nb {
                        let jn = (jb + width).min(nb);
                        for (t, j) in (jb..jn).enumerate() {
                            blk[t] = &b[j * band_len..(j + 1) * band_len];
                        }
                        dotc_block32(ai, &blk[..jn - jb], &mut row[jb..jn]);
                        jb = jn;
                    }
                    for v in row.iter_mut() {
                        *v = v.scale(scale);
                    }
                }
            });
        }
        s
    }

    fn rotate_acc32(
        &self,
        alpha: Complex32,
        a: &[Complex32],
        q: &CMat32,
        band_len: usize,
        out: &mut [Complex32],
    ) {
        let na = n_bands32(a, band_len);
        assert_eq!(q.rows(), na, "rotate_acc32: Q row count must match band count");
        assert_eq!(out.len(), band_len * q.cols(), "rotate_acc32: bad output size");
        // NB output bands per pass over each source band (same
        // per-element accumulation order over i as the reference loop).
        par_chunks_mut(out, band_len * NB, |blk_idx, oblk| {
            let j0 = blk_idx * NB;
            let width = oblk.len() / band_len;
            for i in 0..na {
                let ai = &a[i * band_len..(i + 1) * band_len];
                let mut w = [Complex32::ZERO; NB];
                let mut any = false;
                for s in 0..width {
                    w[s] = alpha * q[(i, j0 + s)];
                    any |= w[s] != Complex32::ZERO;
                }
                if !any {
                    continue;
                }
                match width {
                    4 => {
                        let (o0, rest) = oblk.split_at_mut(band_len);
                        let (o1, rest) = rest.split_at_mut(band_len);
                        let (o2, o3) = rest.split_at_mut(band_len);
                        let (w0, w1, w2, w3) = (w[0], w[1], w[2], w[3]);
                        for (l, &av) in ai.iter().enumerate() {
                            o0[l] = av.mul_add(w0, o0[l]);
                            o1[l] = av.mul_add(w1, o1[l]);
                            o2[l] = av.mul_add(w2, o2[l]);
                            o3[l] = av.mul_add(w3, o3[l]);
                        }
                    }
                    _ => {
                        for (s, oj) in oblk.chunks_mut(band_len).enumerate() {
                            if w[s] != Complex32::ZERO {
                                for (o, &av) in oj.iter_mut().zip(ai) {
                                    *o = av.mul_add(w[s], *o);
                                }
                            }
                        }
                    }
                }
            }
        });
    }

    fn scale_by_real32(&self, k: &[f32], field: &mut [Complex32]) {
        assert!(!k.is_empty(), "scale_by_real32: empty kernel");
        assert!(
            field.len().is_multiple_of(k.len()),
            "scale_by_real32: field not a multiple of kernel"
        );
        // One fused parallel pass over the whole batch.
        par_chunks_mut(field, k.len(), |_, chunk| {
            for (f, &kv) in chunk.iter_mut().zip(k) {
                *f = f.scale(kv);
            }
        });
    }

    fn hadamard_conj32(&self, a: &[Complex32], b: &[Complex32], out: &mut [Complex32]) {
        precision::hadamard_conj32(a, b, out);
    }

    fn hadamard_acc_promote(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        precision::hadamard_acc_promote(w, a, b, acc, comp);
    }

    fn hadamard_acc_promote_conj(
        &self,
        w: f64,
        a: &[Complex32],
        b: &[Complex32],
        acc: &mut [Complex64],
        comp: Option<&mut [Complex64]>,
    ) {
        precision::hadamard_acc_promote_conj(w, a, b, acc, comp);
    }

    fn transform_batch32(&self, pass: &dyn GridTransform32, data: &mut [Complex32], count: usize) {
        let n = pass.grid_len();
        assert_eq!(data.len(), count * n, "transform_batch32 length mismatch");
        if count == 0 {
            return;
        }
        let scratch_len = pass.scratch_len();
        let workers = if data.len() < MIN_BATCH_PARALLEL { 1 } else { num_threads(count) };
        if workers == 1 {
            let mut scratch = self.pool32.take_garbage(scratch_len);
            for grid in data.chunks_mut(n) {
                pass.run(grid, &mut scratch);
            }
            self.pool32.put(scratch);
            return;
        }
        // Slab decomposition with one pooled fp32 arena per worker —
        // the same multi-batch strategy (and tuned slab cap) as the
        // fp64 path at half the memory traffic.
        let mut per_worker = count.div_ceil(workers);
        if self.shapes.fft_slab > 0 {
            per_worker =
                per_worker.min(self.shapes.fft_slab).max(count.div_ceil(workers * 4)).max(1);
        }
        std::thread::scope(|s| {
            for slab in data.chunks_mut(per_worker * n) {
                s.spawn(|| {
                    let mut scratch = self.pool32.take_garbage(scratch_len);
                    for grid in slab.chunks_mut(n) {
                        pass.run(grid, &mut scratch);
                    }
                    self.pool32.put(scratch);
                });
            }
        });
    }

    fn take_scratch32(&self, len: usize) -> Vec<Complex32> {
        self.pool32.take_garbage(len)
    }

    fn recycle_buffer32(&self, buf: Vec<Complex32>) {
        self.pool32.put(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn test_mat(r: usize, c: usize, phase: f64) -> CMat {
        CMat::from_fn(r, c, |i, j| {
            c64(
                ((i * 7 + j * 3) as f64 * 0.37 + phase).sin(),
                ((i as f64) - 0.5 * j as f64 + phase).cos(),
            )
        })
    }

    fn test_block(nb: usize, len: usize, seed: f64) -> Vec<Complex64> {
        (0..nb * len)
            .map(|k| c64((k as f64 * 0.13 + seed).sin(), (k as f64 * 0.07 - seed).cos()))
            .collect()
    }

    /// A cheap non-FFT transform for exercising the batching machinery:
    /// reverse the grid through scratch, then scale by 2.
    struct ReversePass {
        n: usize,
    }

    impl GridTransform for ReversePass {
        fn grid_len(&self) -> usize {
            self.n
        }
        fn scratch_len(&self) -> usize {
            self.n
        }
        fn run(&self, grid: &mut [Complex64], scratch: &mut [Complex64]) {
            scratch[..self.n].copy_from_slice(grid);
            for (g, s) in grid.iter_mut().zip(scratch[..self.n].iter().rev()) {
                *g = s.scale(2.0);
            }
        }
    }

    #[test]
    fn backends_agree_on_gemm_all_ops() {
        let r = Reference;
        let bl = Blocked::new();
        let a = test_mat(7, 5, 0.3);
        let at = test_mat(5, 7, 0.3);
        let c0 = test_mat(7, 9, 2.0);
        for (op_a, aa) in [(Op::None, &a), (Op::Trans, &at)] {
            for op_b in [Op::None, Op::Trans, Op::ConjTrans] {
                let bb = match op_b {
                    Op::None => test_mat(5, 9, 1.1),
                    _ => test_mat(9, 5, 1.1),
                };
                let alpha = c64(0.7, -0.2);
                let beta = c64(-0.1, 0.4);
                let want = r.gemm(alpha, aa, op_a, &bb, op_b, beta, Some(&c0));
                let got = bl.gemm(alpha, aa, op_a, &bb, op_b, beta, Some(&c0));
                assert!(
                    want.max_abs_diff(&got) < 1e-12,
                    "gemm mismatch for {op_a:?}/{op_b:?}"
                );
            }
        }
    }

    #[test]
    fn backends_agree_on_band_ops() {
        let r = Reference;
        let bl = Blocked::new();
        let (nb, len) = (6, 37);
        let a = test_block(nb, len, 0.2);
        let b = test_block(nb, len, 1.4);
        let sr = r.overlap(&a, &b, len, 1.7);
        let sb = bl.overlap(&a, &b, len, 1.7);
        assert!(sr.max_abs_diff(&sb) < 1e-12);

        let q = test_mat(nb, 5, 0.9);
        let mut or_ = vec![Complex64::ZERO; len * 5];
        let mut ob = or_.clone();
        r.rotate(&a, &q, len, &mut or_);
        bl.rotate(&a, &q, len, &mut ob);
        assert!(cvec::max_abs_diff(&or_, &ob) < 1e-12);

        let alpha = c64(0.3, -1.1);
        r.rotate_acc(alpha, &a, &q, len, &mut or_);
        bl.rotate_acc(alpha, &a, &q, len, &mut ob);
        assert!(cvec::max_abs_diff(&or_, &ob) < 1e-12);
    }

    #[test]
    fn scale_by_real_cycles_kernel_over_batch() {
        let r = Reference;
        let bl = Blocked::new();
        let k = [2.0, 3.0, 4.0];
        let base = test_block(1, 12, 0.5);
        let mut fr = base.clone();
        let mut fb = base.clone();
        r.scale_by_real(&k, &mut fr);
        bl.scale_by_real(&k, &mut fb);
        assert!(cvec::max_abs_diff(&fr, &fb) < 1e-15);
        for (i, (v, orig)) in fr.iter().zip(&base).enumerate() {
            assert!((*v - orig.scale(k[i % 3])).abs() < 1e-15);
        }
    }

    #[test]
    fn transform_batch_matches_sequential_and_reuses_pool() {
        let bl = Blocked::new();
        let pass = ReversePass { n: 10 };
        let count = 9;
        let data0 = test_block(count, 10, 0.8);
        let mut batched = data0.clone();
        bl.transform_batch(&pass, &mut batched, count);
        let mut seq = data0;
        let mut scratch = vec![Complex64::ZERO; 10];
        for grid in seq.chunks_mut(10) {
            pass.run(grid, &mut scratch);
        }
        assert!(cvec::max_abs_diff(&batched, &seq) < 1e-15);
        // The arena(s) went back to the pool.
        assert!(bl.pooled() >= 1);
    }

    #[test]
    fn buffer_pool_recycles_and_zeroes() {
        let bl = Blocked::new();
        let mut buf = bl.take_buffer(100);
        buf[0] = c64(5.0, 5.0);
        let cap = buf.capacity();
        bl.recycle_buffer(buf);
        let again = bl.take_buffer(64);
        // Reused the pooled allocation and re-zeroed it.
        assert_eq!(again.capacity(), cap);
        assert!(again.iter().all(|z| *z == Complex64::ZERO));
    }

    #[test]
    fn by_name_and_default() {
        assert_eq!(by_name("reference").unwrap().name(), "reference");
        assert_eq!(by_name("blocked").unwrap().name(), "blocked");
        assert!(by_name("cuda").is_none());
        let d = default_backend();
        assert!(d.name() == "reference" || d.name() == "blocked");
    }

    #[test]
    fn every_gemm_block_width_is_value_identical() {
        // Block widths only regroup output columns — results must be
        // *exactly* the default-width values, not merely close.
        let baseline = Blocked::with_shapes(TunedShapes::default());
        let a = test_mat(7, 13, 0.3);
        let b = test_mat(13, 11, 1.1);
        let alpha = c64(0.7, -0.2);
        let want = baseline.gemm(alpha, &a, Op::None, &b, Op::None, Complex64::ZERO, None);
        let blk_a = test_block(6, 37, 0.2);
        let blk_b = test_block(6, 37, 1.4);
        let want_s = baseline.overlap(&blk_a, &blk_b, 37, 1.7);
        for width in [1usize, 2, 3, 5, 8] {
            let bl = Blocked::with_shapes(TunedShapes {
                gemm_block: width,
                ..TunedShapes::default()
            });
            assert_eq!(bl.shapes().gemm_block, width);
            let got = bl.gemm(alpha, &a, Op::None, &b, Op::None, Complex64::ZERO, None);
            assert_eq!(want.max_abs_diff(&got), 0.0, "gemm width {width} changed values");
            let got_s = bl.overlap(&blk_a, &blk_b, 37, 1.7);
            assert_eq!(want_s.max_abs_diff(&got_s), 0.0, "overlap width {width} changed values");
        }
        // Out-of-range widths clamp instead of panicking.
        let clamped = Blocked::with_shapes(TunedShapes {
            gemm_block: 99,
            ..TunedShapes::default()
        });
        assert_eq!(clamped.shapes().gemm_block, MAX_NB);
    }

    #[test]
    fn pool_tracks_outstanding_and_peak_bytes() {
        let bl = Blocked::new();
        assert_eq!(bl.pool_stats(), PoolStats::default());
        let sz = std::mem::size_of::<Complex64>();
        let b1 = bl.take_buffer(100);
        let b2 = bl.take_scratch(50);
        let peak_cap = (b1.capacity() + b2.capacity()) * sz;
        let stats = bl.pool_stats();
        assert_eq!(stats.fp64.outstanding_bytes, peak_cap);
        assert_eq!(stats.fp64.peak_bytes, peak_cap);
        assert_eq!(stats.fp32, PoolTypeStats::default());
        bl.recycle_buffer(b1);
        bl.recycle_buffer(b2);
        let stats = bl.pool_stats();
        // Everything returned; the high-water mark survives...
        assert_eq!(stats.fp64.outstanding_bytes, 0);
        assert_eq!(stats.fp64.peak_bytes, peak_cap);
        // ...until explicitly reset.
        bl.reset_pool_peak();
        assert_eq!(bl.pool_stats().fp64.peak_bytes, 0);
        // Reference pools nothing and reports zeros.
        let r = Reference;
        let b = r.take_buffer(10);
        assert_eq!(r.pool_stats(), PoolStats::default());
        r.recycle_buffer(b);
        r.reset_pool_peak();
    }

    #[test]
    fn fused_pair_solve_matches_staged_sequence_bitwise() {
        // The fused pipeline must reproduce the staged schedule —
        // pair-density, solve, forward scatter, reverse scatter, in
        // task order — exactly, on both backends.
        let ng = 10;
        let nb = 4;
        let phi = test_block(nb, ng, 0.8);
        let pass = ReversePass { n: ng };
        let tasks = [
            PairTask { i: 0, j: 0, w_fwd: -1.0, w_rev: 0.0 },
            PairTask { i: 0, j: 1, w_fwd: -1.0, w_rev: -0.5, },
            PairTask { i: 1, j: 2, w_fwd: 0.0, w_rev: -0.25 },
            PairTask { i: 2, j: 3, w_fwd: -0.75, w_rev: -0.125 },
        ];
        for be in [&Reference as &dyn Backend, &Blocked::new() as &dyn Backend] {
            let mut fused = vec![Complex64::ZERO; nb * ng];
            be.fused_pair_solve(&pass, &phi, &phi, ng, &tasks, &mut fused);

            let mut staged = vec![Complex64::ZERO; nb * ng];
            let mut pair = vec![Complex64::ZERO; ng];
            let mut scratch = vec![Complex64::ZERO; pass.scratch_len()];
            for t in &tasks {
                let phi_i = &phi[t.i * ng..(t.i + 1) * ng];
                let phi_j = &phi[t.j * ng..(t.j + 1) * ng];
                be.hadamard_conj(phi_i, phi_j, &mut pair);
                pass.run(&mut pair, &mut scratch);
                if t.w_fwd != 0.0 {
                    be.hadamard_acc(
                        Complex64::from_re(t.w_fwd),
                        &pair,
                        phi_i,
                        &mut staged[t.j * ng..(t.j + 1) * ng],
                    );
                }
                if t.w_rev != 0.0 {
                    be.hadamard_acc_conj(
                        Complex64::from_re(t.w_rev),
                        &pair,
                        phi_j,
                        &mut staged[t.i * ng..(t.i + 1) * ng],
                    );
                }
            }
            assert_eq!(
                cvec::max_abs_diff(&fused, &staged),
                0.0,
                "fused != staged on {}",
                be.name()
            );
        }
    }

    /// fp32 twin of [`ReversePass`] for exercising the fused fp32 path.
    struct ReversePass32 {
        n: usize,
    }

    impl GridTransform32 for ReversePass32 {
        fn grid_len(&self) -> usize {
            self.n
        }
        fn scratch_len(&self) -> usize {
            self.n
        }
        fn run(&self, grid: &mut [Complex32], scratch: &mut [Complex32]) {
            scratch[..self.n].copy_from_slice(grid);
            for (g, s) in grid.iter_mut().zip(scratch[..self.n].iter().rev()) {
                *g = s.scale(2.0);
            }
        }
    }

    #[test]
    fn fused_pair_solve32_backends_agree_exactly_and_compensate() {
        let ng = 10;
        let nb = 3;
        let phi64 = test_block(nb, ng, 0.4);
        let phi = precision::demote(&phi64);
        let phi = phi.as_slice();
        let pass = ReversePass32 { n: ng };
        let tasks = [
            PairTask { i: 0, j: 1, w_fwd: -1.0, w_rev: -0.5 },
            PairTask { i: 1, j: 2, w_fwd: -0.75, w_rev: 0.0 },
        ];
        let mut out_r = vec![Complex64::ZERO; nb * ng];
        let mut out_b = vec![Complex64::ZERO; nb * ng];
        Reference.fused_pair_solve32(&pass, &phi, &phi, ng, &tasks, &mut out_r, None);
        Blocked::new().fused_pair_solve32(&pass, &phi, &phi, ng, &tasks, &mut out_b, None);
        // fp32 primitives must agree exactly across backends.
        assert_eq!(cvec::max_abs_diff(&out_r, &out_b), 0.0);
        assert!(out_r.iter().any(|z| *z != Complex64::ZERO));
        // The compensated variant runs and stays close to the plain one.
        let mut out_c = vec![Complex64::ZERO; nb * ng];
        let mut comp = vec![Complex64::ZERO; nb * ng];
        Blocked::new()
            .fused_pair_solve32(&pass, &phi, &phi, ng, &tasks, &mut out_c, Some(&mut comp));
        assert!(cvec::max_abs_diff(&out_c, &out_b) < 1e-6);
    }
}
