//! Property-based tests for the pwnum linear algebra kernels.

use proptest::prelude::*;
use pwnum::chol::{cholesky, solve_hpd};
use pwnum::cmat::CMat;
use pwnum::complex::{c64, Complex64};
use pwnum::eig::{eigh, reconstruct};
use pwnum::gemm::{gemm, herm_matmul, Op};

fn cmat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), rows * cols).prop_map(move |v| {
        CMat::from_vec(rows, cols, v.into_iter().map(|(re, im)| c64(re, im)).collect())
    })
}

fn hermitian_strategy(n: usize) -> impl Strategy<Value = CMat> {
    cmat_strategy(n, n).prop_map(|a| a.hermitian_part())
}

fn hpd_strategy(n: usize) -> impl Strategy<Value = CMat> {
    cmat_strategy(n, n).prop_map(move |a| {
        let mut m = herm_matmul(&a, &a);
        for i in 0..n {
            m[(i, i)] += Complex64::from_re(0.5 + n as f64);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_associative(a in cmat_strategy(4, 3), b in cmat_strategy(3, 5), c in cmat_strategy(5, 2)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-12);
    }

    #[test]
    fn gemm_respects_herm_identity(a in cmat_strategy(4, 6), b in cmat_strategy(4, 6)) {
        // (A^H B)^H == B^H A
        let ab = herm_matmul(&a, &b);
        let ba = herm_matmul(&b, &a);
        prop_assert!(ab.herm().max_abs_diff(&ba) < 1e-12);
    }

    #[test]
    fn eigh_reconstructs(a in hermitian_strategy(6)) {
        let e = eigh(&a);
        prop_assert!(reconstruct(&e).max_abs_diff(&a) < 1e-10);
        // Eigenvectors unitary.
        let vhv = herm_matmul(&e.vectors, &e.vectors);
        prop_assert!(vhv.max_abs_diff(&CMat::identity(6)) < 1e-10);
        // Eigenvalues real and sorted.
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn eigh_trace_identity(a in hermitian_strategy(5)) {
        let e = eigh(&a);
        let sum: f64 = e.values.iter().sum();
        prop_assert!((sum - a.trace().re).abs() < 1e-10);
    }

    #[test]
    fn cholesky_roundtrip(a in hpd_strategy(5)) {
        let l = cholesky(&a).expect("HPD by construction");
        let llh = gemm(Complex64::ONE, &l, Op::None, &l, Op::ConjTrans, Complex64::ZERO, None);
        prop_assert!(llh.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn hpd_solve_residual(a in hpd_strategy(4), b in cmat_strategy(4, 2)) {
        let x = solve_hpd(&a, &b).expect("HPD by construction");
        let ax = a.matmul(&x);
        prop_assert!(ax.max_abs_diff(&b) < 1e-8);
    }

    #[test]
    fn overlap_rotation_consistency(
        data in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 3 * 16),
        qdata in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 9),
    ) {
        // overlap(A·Q, A·Q) == Q^H overlap(A, A) Q for any Q.
        let a: Vec<Complex64> = data.into_iter().map(|(re, im)| c64(re, im)).collect();
        let q = CMat::from_vec(3, 3, qdata.into_iter().map(|(re, im)| c64(re, im)).collect());
        let mut rotated = vec![Complex64::ZERO; a.len()];
        pwnum::bands::rotate(&a, &q, 16, &mut rotated);
        let s = pwnum::bands::overlap(&a, &a, 16, 1.0);
        let s_rot = pwnum::bands::overlap(&rotated, &rotated, 16, 1.0);
        let expect = gemm(Complex64::ONE, &q, Op::ConjTrans, &s.matmul(&q), Op::None, Complex64::ZERO, None);
        prop_assert!(s_rot.max_abs_diff(&expect) < 1e-10);
    }

    #[test]
    fn hermitian_part_projects(a in cmat_strategy(5, 5)) {
        let h = a.hermitian_part();
        prop_assert!(h.hermiticity_error() < 1e-13);
        // Applying twice changes nothing.
        prop_assert!(h.hermitian_part().max_abs_diff(&h) < 1e-13);
    }
}
