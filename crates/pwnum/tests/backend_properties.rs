//! Backend-equivalence property suite: the `Reference` and `Blocked`
//! compute backends must agree to ≤ 1e-10 on every primitive of the
//! [`pwnum::backend::Backend`] trait, for arbitrary shapes and operand
//! ops — the contract that makes the backend seam safe to swap.

use proptest::prelude::*;
use pwnum::backend::{by_name, BackendHandle, GridTransform, GridTransform32};
use pwnum::cmat::CMat;
use pwnum::complex::{c64, Complex64};
use pwnum::gemm::Op;
use pwnum::precision::{self, c32, CMat32, Complex32};

fn pair() -> (BackendHandle, BackendHandle) {
    (by_name("reference").unwrap(), by_name("blocked").unwrap())
}

fn cmat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = CMat> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), rows * cols).prop_map(move |v| {
        CMat::from_vec(rows, cols, v.into_iter().map(|(re, im)| c64(re, im)).collect())
    })
}

fn block_strategy(n: usize) -> impl Strategy<Value = Vec<Complex64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), n)
        .prop_map(|v| v.into_iter().map(|(re, im)| c64(re, im)).collect())
}

/// A non-FFT grid pass (cyclic shift by 1 through scratch, scaled) for
/// exercising `transform_batch` semantics independently of `pwfft`.
struct ShiftPass {
    n: usize,
}

impl GridTransform for ShiftPass {
    fn grid_len(&self) -> usize {
        self.n
    }
    fn scratch_len(&self) -> usize {
        self.n
    }
    fn run(&self, grid: &mut [Complex64], scratch: &mut [Complex64]) {
        scratch[..self.n].copy_from_slice(grid);
        for i in 0..self.n {
            grid[i] = scratch[(i + 1) % self.n].scale(1.5);
        }
    }
}

/// fp32 twin of [`ShiftPass`] for `transform_batch32` semantics.
struct ShiftPass32 {
    n: usize,
}

impl GridTransform32 for ShiftPass32 {
    fn grid_len(&self) -> usize {
        self.n
    }
    fn scratch_len(&self) -> usize {
        self.n
    }
    fn run(&self, grid: &mut [Complex32], scratch: &mut [Complex32]) {
        scratch[..self.n].copy_from_slice(grid);
        for i in 0..self.n {
            grid[i] = scratch[(i + 1) % self.n].scale(1.5);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_agrees_all_op_combinations(
        a in cmat_strategy(6, 4),
        b in cmat_strategy(4, 7),
        at in cmat_strategy(4, 6),
        bt in cmat_strategy(7, 4),
        c0 in cmat_strategy(6, 7),
        alpha in (-2.0f64..2.0, -2.0f64..2.0),
        beta in (-2.0f64..2.0, -2.0f64..2.0),
    ) {
        let (r, bl) = pair();
        let alpha = c64(alpha.0, alpha.1);
        let beta = c64(beta.0, beta.1);
        for (op_a, aa) in [(Op::None, &a), (Op::Trans, &at), (Op::ConjTrans, &at)] {
            for (op_b, bb) in [(Op::None, &b), (Op::Trans, &bt), (Op::ConjTrans, &bt)] {
                let want = r.gemm(alpha, aa, op_a, bb, op_b, beta, Some(&c0));
                let got = bl.gemm(alpha, aa, op_a, bb, op_b, beta, Some(&c0));
                prop_assert!(
                    want.max_abs_diff(&got) < 1e-10,
                    "gemm {op_a:?}/{op_b:?}: {}",
                    want.max_abs_diff(&got)
                );
            }
        }
    }

    #[test]
    fn overlap_agrees(
        a in block_strategy(7 * 33),
        b in block_strategy(5 * 33),
        scale in 0.1f64..3.0,
    ) {
        let (r, bl) = pair();
        let sr = r.overlap(&a, &b, 33, scale);
        let sb = bl.overlap(&a, &b, 33, scale);
        prop_assert!(sr.max_abs_diff(&sb) < 1e-10);
    }

    #[test]
    fn rotate_and_rotate_acc_agree(
        a in block_strategy(5 * 21),
        q in cmat_strategy(5, 6),
        alpha in (-2.0f64..2.0, -2.0f64..2.0),
        seed in block_strategy(6 * 21),
    ) {
        let (r, bl) = pair();
        let mut out_r = vec![Complex64::ZERO; 6 * 21];
        let mut out_b = out_r.clone();
        r.rotate(&a, &q, 21, &mut out_r);
        bl.rotate(&a, &q, 21, &mut out_b);
        prop_assert!(pwnum::cvec::max_abs_diff(&out_r, &out_b) < 1e-10);

        // Accumulating variant from a shared nonzero starting point.
        let alpha = c64(alpha.0, alpha.1);
        let mut acc_r = seed.clone();
        let mut acc_b = seed;
        r.rotate_acc(alpha, &a, &q, 21, &mut acc_r);
        bl.rotate_acc(alpha, &a, &q, 21, &mut acc_b);
        prop_assert!(pwnum::cvec::max_abs_diff(&acc_r, &acc_b) < 1e-10);
    }

    #[test]
    fn lincomb_and_elementwise_agree(
        a in block_strategy(64),
        b in block_strategy(64),
        k in proptest::collection::vec(-2.0f64..2.0, 16),
        w in (-2.0f64..2.0, -2.0f64..2.0),
    ) {
        let (r, bl) = pair();
        let ca = c64(0.4, -0.7);
        let cb = c64(-1.1, 0.2);
        let mut out_r = vec![Complex64::ZERO; 64];
        let mut out_b = out_r.clone();
        r.lincomb(ca, &a, cb, &b, &mut out_r);
        bl.lincomb(ca, &a, cb, &b, &mut out_b);
        prop_assert!(pwnum::cvec::max_abs_diff(&out_r, &out_b) < 1e-12);

        // Kernel apply cycles over the batch identically.
        let mut fr = a.clone();
        let mut fb = a.clone();
        r.scale_by_real(&k, &mut fr);
        bl.scale_by_real(&k, &mut fb);
        prop_assert!(pwnum::cvec::max_abs_diff(&fr, &fb) < 1e-12);

        let w = c64(w.0, w.1);
        let mut hr = out_r.clone();
        let mut hb = out_r.clone();
        r.hadamard_conj(&a, &b, &mut hr);
        bl.hadamard_conj(&a, &b, &mut hb);
        prop_assert!(pwnum::cvec::max_abs_diff(&hr, &hb) < 1e-12);
        r.hadamard_acc(w, &a, &b, &mut hr);
        bl.hadamard_acc(w, &a, &b, &mut hb);
        prop_assert!(pwnum::cvec::max_abs_diff(&hr, &hb) < 1e-12);
        // Conjugated accumulate (pair-symmetric Fock scatter): the
        // blocked 4-wide unroll keeps per-element math identical, so the
        // two backends agree bitwise.
        r.hadamard_acc_conj(w, &a, &b, &mut hr);
        bl.hadamard_acc_conj(w, &a, &b, &mut hb);
        prop_assert!(pwnum::cvec::max_abs_diff(&hr, &hb) == 0.0);
        // And it is the conjugate-argument twin of hadamard_acc.
        let ac: Vec<Complex64> = a.iter().map(|z| z.conj()).collect();
        let mut got = out_r.clone();
        let mut href = out_r.clone();
        r.hadamard_acc_conj(w, &a, &b, &mut got);
        r.hadamard_acc(w, &ac, &b, &mut href);
        prop_assert!(pwnum::cvec::max_abs_diff(&got, &href) < 1e-12);
    }

    #[test]
    fn transform_batch_agrees(data in block_strategy(11 * 13)) {
        let (r, bl) = pair();
        let pass = ShiftPass { n: 13 };
        let mut dr = data.clone();
        let mut db = data;
        r.transform_batch(&pass, &mut dr, 11);
        bl.transform_batch(&pass, &mut db, 11);
        prop_assert!(pwnum::cvec::max_abs_diff(&dr, &db) < 1e-14);
    }

    // ------------------------------------------------------------------
    // fp32 / mixed-precision primitives: demote/promote roundtrip error
    // bounds, and *exact* Reference-vs-Blocked agreement on every fp32
    // kernel (reduced precision must not compound with backend
    // summation-order differences).
    // ------------------------------------------------------------------

    #[test]
    fn demote_promote_roundtrip_bounded(x in block_strategy(257)) {
        // Round-to-nearest demotion: per-component relative error is at
        // most 2^-24, and promotion back is exact.
        let down = precision::demote(&x);
        let up = precision::promote(&down);
        for (a, b) in x.iter().zip(&up) {
            prop_assert!((a.re - b.re).abs() <= a.re.abs() * 2f64.powi(-24));
            prop_assert!((a.im - b.im).abs() <= a.im.abs() * 2f64.powi(-24));
        }
        prop_assert!(precision::demote(&up) == down, "fp32->fp64->fp32 must be lossless");
    }

    #[test]
    fn gemm32_agrees_exactly_all_ops(
        a in cmat_strategy(6, 4),
        b in cmat_strategy(4, 7),
        at in cmat_strategy(4, 6),
        bt in cmat_strategy(7, 4),
        alpha in (-2.0f64..2.0, -2.0f64..2.0),
    ) {
        let (r, bl) = pair();
        let a = CMat32::from_c64(&a);
        let b = CMat32::from_c64(&b);
        let at = CMat32::from_c64(&at);
        let bt = CMat32::from_c64(&bt);
        let alpha = c32(alpha.0 as f32, alpha.1 as f32);
        for (op_a, aa) in [(Op::None, &a), (Op::Trans, &at), (Op::ConjTrans, &at)] {
            for (op_b, bb) in [(Op::None, &b), (Op::Trans, &bt), (Op::ConjTrans, &bt)] {
                let want = r.gemm32(alpha, aa, op_a, bb, op_b);
                let got = bl.gemm32(alpha, aa, op_a, bb, op_b);
                prop_assert!(
                    want.max_abs_diff(&got) == 0.0,
                    "gemm32 {:?}/{:?}", op_a, op_b
                );
            }
        }
    }

    #[test]
    fn band_ops32_agree_exactly(
        a in block_strategy(7 * 33),
        b in block_strategy(5 * 33),
        q in cmat_strategy(7, 6),
        seed in block_strategy(6 * 33),
        scale in 0.1f64..3.0,
        alpha in (-2.0f64..2.0, -2.0f64..2.0),
    ) {
        let (r, bl) = pair();
        let a32 = precision::demote(&a);
        let b32 = precision::demote(&b);
        let q32 = CMat32::from_c64(&q);
        let sr = r.overlap32(&a32, &b32, 33, scale as f32);
        let sb = bl.overlap32(&a32, &b32, 33, scale as f32);
        prop_assert!(sr.max_abs_diff(&sb) == 0.0, "overlap32");

        let alpha = c32(alpha.0 as f32, alpha.1 as f32);
        let mut acc_r = precision::demote(&seed);
        let mut acc_b = acc_r.clone();
        r.rotate_acc32(alpha, &a32, &q32, 33, &mut acc_r);
        bl.rotate_acc32(alpha, &a32, &q32, 33, &mut acc_b);
        prop_assert!(
            precision::max_abs_diff32(&acc_r, &acc_b) == 0.0,
            "rotate_acc32"
        );
    }

    #[test]
    fn elementwise32_agree_exactly(
        a in block_strategy(64),
        b in block_strategy(64),
        seed in block_strategy(64),
        k in proptest::collection::vec(-2.0f64..2.0, 16),
        w in -2.0f64..2.0,
    ) {
        let (r, bl) = pair();
        let a32 = precision::demote(&a);
        let b32 = precision::demote(&b);
        let k32 = precision::demote_real(&k);

        let mut hr = vec![Complex32::ZERO; 64];
        let mut hb = hr.clone();
        r.hadamard_conj32(&a32, &b32, &mut hr);
        bl.hadamard_conj32(&a32, &b32, &mut hb);
        prop_assert!(precision::max_abs_diff32(&hr, &hb) == 0.0, "hadamard_conj32");

        let mut fr = a32.clone();
        let mut fb = a32.clone();
        r.scale_by_real32(&k32, &mut fr);
        bl.scale_by_real32(&k32, &mut fb);
        prop_assert!(precision::max_abs_diff32(&fr, &fb) == 0.0, "scale_by_real32");

        // Promote-accumulate into fp64 targets: plain and two-sum
        // compensated, direct and conjugated — all exact across
        // backends.
        let mut acc_r = seed.clone();
        let mut acc_b = seed.clone();
        r.hadamard_acc_promote(w, &a32, &b32, &mut acc_r, None);
        bl.hadamard_acc_promote(w, &a32, &b32, &mut acc_b, None);
        prop_assert!(pwnum::cvec::max_abs_diff(&acc_r, &acc_b) == 0.0);

        let mut comp_r = vec![Complex64::ZERO; 64];
        let mut comp_b = comp_r.clone();
        r.hadamard_acc_promote_conj(w, &a32, &b32, &mut acc_r, Some(&mut comp_r));
        bl.hadamard_acc_promote_conj(w, &a32, &b32, &mut acc_b, Some(&mut comp_b));
        prop_assert!(pwnum::cvec::max_abs_diff(&acc_r, &acc_b) == 0.0);
        prop_assert!(pwnum::cvec::max_abs_diff(&comp_r, &comp_b) == 0.0);

        // The promote kernels degenerate to the fp64 kernels on
        // fp32-exact inputs.
        let a64 = precision::promote(&a32);
        let b64 = precision::promote(&b32);
        let mut want = seed.clone();
        let mut got = seed;
        r.hadamard_acc(Complex64::from_re(w), &a64, &b64, &mut want);
        r.hadamard_acc_promote(w, &a32, &b32, &mut got, None);
        prop_assert!(pwnum::cvec::max_abs_diff(&want, &got) == 0.0);
    }

    #[test]
    fn transform_batch32_agrees_exactly(data in block_strategy(11 * 13)) {
        let (r, bl) = pair();
        let pass = ShiftPass32 { n: 13 };
        let mut dr = precision::demote(&data);
        let mut db = dr.clone();
        r.transform_batch32(&pass, &mut dr, 11);
        bl.transform_batch32(&pass, &mut db, 11);
        prop_assert!(precision::max_abs_diff32(&dr, &db) == 0.0);
    }
}

#[test]
fn buffer_pool_roundtrip_is_zeroed() {
    let (r, bl) = pair();
    for be in [&r, &bl] {
        let mut buf = be.take_buffer(128);
        assert!(buf.iter().all(|z| *z == Complex64::ZERO));
        buf[5] = c64(3.0, -4.0);
        be.recycle_buffer(buf);
        let again = be.take_buffer(64);
        assert!(again.iter().all(|z| *z == Complex64::ZERO));
    }
}
